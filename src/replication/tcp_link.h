#ifndef LAZYSI_REPLICATION_TCP_LINK_H_
#define LAZYSI_REPLICATION_TCP_LINK_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>

#include "common/queue.h"
#include "common/random.h"
#include "replication/byte_link.h"
#include "replication/chaos_link.h"

namespace lazysi {
namespace replication {

/// Hard ceiling on one length-prefixed TCP frame. A propagation record is a
/// handful of keys and values; anything this large is a corrupt or hostile
/// length prefix, and honoring it would turn one flipped bit into a
/// multi-gigabyte allocation.
constexpr std::size_t kMaxTcpFrameBytes = 16u * 1024 * 1024;

/// Appends one wire frame — a 4-byte little-endian payload length followed
/// by the payload bytes — to `wire`. The inverse of TcpFramer.
inline void AppendTcpFrame(std::string* wire, std::string_view payload) {
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  char prefix[4];
  prefix[0] = static_cast<char>(len & 0xff);
  prefix[1] = static_cast<char>((len >> 8) & 0xff);
  prefix[2] = static_cast<char>((len >> 16) & 0xff);
  prefix[3] = static_cast<char>((len >> 24) & 0xff);
  wire->append(prefix, 4);
  wire->append(payload.data(), payload.size());
}

/// Incremental decoder for the length-prefixed TCP framing. Feed() raw bytes
/// exactly as they come off the socket — in any fragmentation, including one
/// byte at a time — and Next() yields each complete payload in order. A
/// length prefix above the clamp poisons the stream permanently: framing
/// carries no checksum (ReliableChannel's CRC covers the payload), so after
/// a bad length there is no way to find the next frame boundary, and the
/// only safe reaction is to drop the connection.
class TcpFramer {
 public:
  explicit TcpFramer(std::size_t max_frame_bytes = kMaxTcpFrameBytes)
      : max_frame_(max_frame_bytes) {}

  /// Appends raw stream bytes. Returns false once the stream is poisoned
  /// (the bytes are discarded).
  bool Feed(std::string_view bytes) {
    if (poisoned_) return false;
    buf_.append(bytes.data(), bytes.size());
    return true;
  }

  /// Pops the next complete frame payload, nullopt when more bytes are
  /// needed (or the stream is poisoned).
  std::optional<std::string> Next() {
    if (poisoned_ || buf_.size() - pos_ < 4) return std::nullopt;
    const unsigned char* p =
        reinterpret_cast<const unsigned char*>(buf_.data() + pos_);
    const std::uint32_t len = static_cast<std::uint32_t>(p[0]) |
                              (static_cast<std::uint32_t>(p[1]) << 8) |
                              (static_cast<std::uint32_t>(p[2]) << 16) |
                              (static_cast<std::uint32_t>(p[3]) << 24);
    if (len > max_frame_) {
      poisoned_ = true;
      buf_.clear();
      pos_ = 0;
      return std::nullopt;
    }
    if (buf_.size() - pos_ < 4 + static_cast<std::size_t>(len)) {
      return std::nullopt;
    }
    std::string payload = buf_.substr(pos_ + 4, len);
    pos_ += 4 + len;
    // Compact lazily: only when the dead prefix dominates the buffer.
    if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
      buf_.erase(0, pos_);
      pos_ = 0;
    }
    return payload;
  }

  bool poisoned() const { return poisoned_; }
  std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::size_t max_frame_;
  bool poisoned_ = false;
  std::string buf_;
  std::size_t pos_ = 0;
};

/// ByteLink over a real loopback TCP connection: the same two-endpoint,
/// one-object shape as ChaosLink, but the frames genuinely cross the kernel
/// socket layer. The link owns a listener on 127.0.0.1, dials itself once at
/// construction, and keeps one full-duplex connection per "connection
/// generation":
///
///   - SendData writes a length-prefixed frame on the sender-side socket;
///     a reader thread on the receiver-side socket reassembles frames
///     (partial reads included) and feeds the persistent data queue;
///   - SendAck flows the same way in the opposite direction;
///   - Disconnect() shuts the sockets down (both readers see EOF); a write
///     hitting EPIPE/ECONNRESET marks the link disconnected the same way;
///   - Reconnect() dials a fresh connection — bytes stranded in the dead
///     sockets are lost, exactly the loss model ReliableChannel's resync
///     machinery exists for. Frames already reassembled into the queues
///     survive, matching ChaosLink's "already on the wire" semantics.
///
/// An optional FaultProfile injects drops/duplicates/corruption/disconnects
/// before frames reach the socket (corruption flips payload bytes only, so
/// framing survives and ReliableChannel's CRC — not the framer — catches
/// it). The fault decision order matches ChaosLink draw-for-draw, so a
/// seeded chaos schedule produces the same fault sequence on either link.
class TcpLink : public ByteLink {
 public:
  using Counters = LinkCounters;

  explicit TcpLink(FaultProfile faults = FaultProfile{},
                   std::uint64_t seed = 1);
  ~TcpLink() override;

  TcpLink(const TcpLink&) = delete;
  TcpLink& operator=(const TcpLink&) = delete;

  bool SendData(std::string frame) override;
  bool SendAck(std::string frame) override;
  std::optional<std::string> ReceiveData() override { return data_.Pop(); }
  std::optional<std::string> ReceiveDataFor(
      std::chrono::milliseconds timeout) override {
    return data_.PopFor(timeout);
  }
  std::optional<std::string> TryReceiveData() override {
    return data_.TryPop();
  }
  std::optional<std::string> TryReceiveAck() override {
    return acks_.TryPop();
  }

  bool disconnected() const override {
    return disconnected_.load(std::memory_order_acquire);
  }
  void Reconnect() override;
  void Disconnect() override;
  void Close() override;
  void Reopen() override;
  Counters counters() const override;

  /// True when the constructor (or Reopen) established a live connection;
  /// false means the environment refused loopback sockets entirely.
  bool ok() const { return listen_fd_ >= 0; }

 private:
  /// Fault-injection + framing + socket write for one direction. `fd_slot`
  /// points at sender_fd_ or receiver_fd_ (read under conn_mu_).
  bool SendFrame(int* fd_slot, std::string frame);
  /// Reads `fd` until EOF/error, reassembling frames into `out`.
  void ReaderLoop(int fd, BlockingQueue<std::string>* out);
  /// Dials listener, accepts, spawns reader threads. conn_mu_ held.
  bool EstablishLocked();
  /// Shuts down + joins + closes the current connection. conn_mu_ held.
  void TeardownLocked();
  void MarkDisconnected();

  FaultProfile faults_;
  std::mutex rng_mu_;
  Rng rng_;

  mutable std::mutex conn_mu_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  int sender_fd_ = -1;    // sender endpoint: writes data frames
  int receiver_fd_ = -1;  // receiver endpoint: writes ack frames
  std::thread data_reader_;  // receiver_fd_ -> data_
  std::thread ack_reader_;   // sender_fd_   -> acks_

  BlockingQueue<std::string> data_;
  BlockingQueue<std::string> acks_;

  std::atomic<bool> disconnected_{false};
  std::atomic<bool> closing_{false};

  std::atomic<std::uint64_t> counter_sent_{0};
  std::atomic<std::uint64_t> counter_delivered_{0};
  std::atomic<std::uint64_t> counter_dropped_{0};
  std::atomic<std::uint64_t> counter_duplicated_{0};
  std::atomic<std::uint64_t> counter_corrupted_{0};
  std::atomic<std::uint64_t> counter_disconnects_{0};
  std::atomic<std::uint64_t> counter_bytes_sent_{0};
  std::atomic<std::uint64_t> counter_bytes_delivered_{0};
};

}  // namespace replication
}  // namespace lazysi

#endif  // LAZYSI_REPLICATION_TCP_LINK_H_
