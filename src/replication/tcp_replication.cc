#include "replication/tcp_replication.h"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

#include "common/logging.h"
#include "replication/wire.h"

namespace lazysi {
namespace replication {

std::string EncodeBatchFramePayload(
    const std::vector<PropagationRecord>& records) {
  std::string payload(1, kReplBatchTag);
  PutVarint(&payload, records.size());
  for (const auto& record : records) EncodeRecord(record, &payload);
  return payload;
}

bool DecodeBatchFramePayload(const std::string& frame, std::size_t* offset,
                             std::vector<PropagationRecord>* out) {
  if (*offset >= frame.size() || frame[*offset] != kReplBatchTag) {
    return false;
  }
  ++*offset;
  std::uint64_t count = 0;
  if (!GetVarint(frame, offset, &count)) return false;
  // No reserve(count): the claim crossed the wire unverified, and each
  // record must decode anyway before it costs memory.
  for (std::uint64_t i = 0; i < count; ++i) {
    auto record = DecodeRecord(frame, offset);
    if (!record.ok()) return false;
    out->push_back(std::move(*record));
  }
  return *offset == frame.size();
}

// ---------------------------------------------------------------------------
// ReplicationListener

ReplicationListener::ReplicationListener(Propagator* propagator,
                                         Options options)
    : propagator_(propagator), options_(std::move(options)) {
  if (options_.max_batch_records == 0) options_.max_batch_records = 1;
  if (options_.max_batch_bytes == 0) options_.max_batch_bytes = 1;
  if (options_.loop != nullptr) {
    loop_ = options_.loop;
  } else {
    owned_loop_ = std::make_unique<net::EventLoop>();
    loop_ = owned_loop_.get();
  }
}

ReplicationListener::~ReplicationListener() { Stop(); }

Status ReplicationListener::Start() {
  listen_fd_ = ListenOn(options_.host, options_.port, &port_);
  if (listen_fd_ < 0) {
    return Status::Unavailable("replication listener: cannot bind " +
                               options_.host);
  }
  SetNonBlocking(listen_fd_);
  attach_q_.Reopen();
  attach_worker_ = std::thread([this] {
    while (auto task = attach_q_.Pop()) (*task)();
  });
  if (owned_loop_) owned_loop_->Start();
  loop_->RunInLoop([this] {
    loop_->AddFd(listen_fd_, EPOLLIN,
                 [this](std::uint32_t) { OnAcceptable(); });
  });
  started_ = true;
  return Status::OK();
}

void ReplicationListener::Stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) return;
  if (!started_) return;
  // Deregister the acceptor and sever every connection on the loop thread;
  // the close handlers detach the propagator sinks, so no new pump tasks
  // can be scheduled after this barrier.
  loop_->PostAndWait([this] {
    if (listen_fd_ >= 0) {
      loop_->RemoveFd(listen_fd_);
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    std::vector<std::shared_ptr<Conn>> conns;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns = conns_;
    }
    for (auto& conn : conns) {
      if (conn->nc) conn->nc->Close();  // runs OnConnClosed inline
    }
  });
  attach_q_.Close();
  if (attach_worker_.joinable()) attach_worker_.join();
  // Flush any pump/flush tasks still queued behind the close barrier, then
  // (if the loop is ours) stop it.
  loop_->PostAndWait([] {});
  if (owned_loop_) owned_loop_->Stop();
  std::lock_guard<std::mutex> lock(conns_mu_);
  conns_.clear();
}

std::uint64_t ReplicationListener::MinAckFloor() const {
  std::uint64_t floor = UINT64_MAX;
  std::lock_guard<std::mutex> lock(conns_mu_);
  for (const auto& conn : conns_) {
    if (conn->done.load(std::memory_order_acquire)) continue;
    const std::uint64_t acked = conn->acked.load(std::memory_order_relaxed);
    // A freshly-accepted connection (acked 0) maps to the oldest retained
    // sync point, which conservatively pins the floor at the current log
    // base — truncation merely pauses until acks flow.
    floor = std::min<std::uint64_t>(
        floor, propagator_->SyncPointAtOrBefore(acked).lsn);
  }
  return floor;
}

ReplicationListener::Stats ReplicationListener::stats() const {
  Stats s;
  s.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  s.records_streamed = records_streamed_.load(std::memory_order_relaxed);
  s.replay_attaches = replay_attaches_.load(std::memory_order_relaxed);
  s.frames_sent = frames_sent_.load(std::memory_order_relaxed);
  s.batch_frames_sent = batch_frames_sent_.load(std::memory_order_relaxed);
  s.backpressure_stalls =
      backpressure_stalls_.load(std::memory_order_relaxed);
  s.bytes_sent = retired_bytes_sent_.load(std::memory_order_relaxed);
  s.writev_calls = retired_writev_calls_.load(std::memory_order_relaxed);
  s.flushes = retired_flushes_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(conns_mu_);
  for (const auto& conn : conns_) {
    if (!conn->nc) continue;
    const auto c = conn->nc->counters();
    s.bytes_sent += c.bytes_sent;
    s.writev_calls += c.writev_calls;
    s.flushes += c.flushes;
  }
  return s;
}

void ReplicationListener::OnAcceptable() {
  for (;;) {
    int fd;
    do {
      fd = ::accept(listen_fd_, nullptr, nullptr);
    } while (fd < 0 && errno == EINTR);
    if (fd < 0) return;  // EAGAIN (drained) or listener closed
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    SetTcpNoDelay(fd);
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    auto conn = std::make_shared<Conn>();
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.push_back(conn);
    }
    std::weak_ptr<Conn> weak = conn;
    net::Connection::Options copts;
    copts.low_watermark = std::max<std::size_t>(1, options_.max_output_bytes / 2);
    net::Connection::Callbacks cbs;
    cbs.on_bytes = [this, weak](net::Connection&, std::string_view bytes) {
      if (auto c = weak.lock()) OnConnBytes(c, bytes);
    };
    cbs.on_drain = [this, weak](net::Connection&) {
      auto c = weak.lock();
      if (!c || !c->stalled) return;
      c->stalled = false;
      PumpConn(c);
    };
    cbs.on_close = [this, weak](net::Connection&) {
      if (auto c = weak.lock()) OnConnClosed(c);
    };
    conn->nc = net::Connection::Adopt(loop_, fd, copts, std::move(cbs));
    // The propagator wakes the pump through the sink's hook — no parked
    // consumer thread per connection.
    conn->sink.SetWakeup([this, weak] { SchedulePump(weak); });
  }
}

void ReplicationListener::SchedulePump(const std::weak_ptr<Conn>& weak) {
  auto conn = weak.lock();
  if (!conn) return;
  if (conn->pump_scheduled.exchange(true, std::memory_order_acq_rel)) return;
  loop_->Post([this, weak] {
    auto c = weak.lock();
    if (!c) return;
    c->pump_scheduled.store(false, std::memory_order_release);
    PumpConn(c);
  });
}

void ReplicationListener::OnConnBytes(const std::shared_ptr<Conn>& conn,
                                      std::string_view bytes) {
  if (!conn->framer.Feed(bytes)) {
    conn->nc->Close();
    return;
  }
  while (auto frame = conn->framer.Next()) {
    HandleFrame(conn, *frame);
    if (conn->done.load(std::memory_order_acquire)) return;
  }
  if (conn->framer.poisoned()) conn->nc->Close();
}

void ReplicationListener::HandleFrame(const std::shared_ptr<Conn>& conn,
                                      const std::string& frame) {
  if (frame.empty()) return;
  if (!conn->hello_done) {
    if (frame[0] != kReplHelloTag) {
      conn->nc->Close();  // wrong protocol; drop silently
      return;
    }
    std::size_t off = 1;
    std::uint64_t expected = 0;
    std::uint64_t from_lsn = 0;
    if (!GetVarint(frame, &off, &expected) ||
        !GetVarint(frame, &off, &from_lsn)) {
      LAZYSI_WARN(
          "replication listener: malformed HELLO, dropping connection");
      conn->nc->Close();
      return;
    }
    conn->hello_done = true;
    // Attaching may replay a large log suffix; keep it off the loop.
    attach_q_.Push([this, conn, expected, from_lsn] {
      HandleAttach(conn, expected, from_lsn);
    });
    return;
  }
  if (frame[0] != kReplAckTag || frame.size() < 2) return;
  std::size_t off = 1;
  std::uint64_t acked = 0;
  if (GetVarint(frame, &off, &acked)) {
    conn->acked.store(acked, std::memory_order_relaxed);
  }
}

void ReplicationListener::HandleAttach(const std::shared_ptr<Conn>& conn,
                                       std::uint64_t expected,
                                       std::uint64_t from_lsn) {
  if (conn->done.load(std::memory_order_acquire)) return;
  // A resuming secondary (expected > 0) replays from the latest quiesced
  // point at or below its position; a fresh one (expected == 0, e.g. after
  // kill -9) replays the log from its checkpoint LSN — 0 = everything.
  std::size_t attach_lsn = static_cast<std::size_t>(from_lsn);
  if (expected > 0) {
    attach_lsn = propagator_->SyncPointAtOrBefore(expected).lsn;
  }
  auto base = propagator_->AttachSinkAt(&conn->sink, attach_lsn);
  if (!base.ok()) {
    LAZYSI_WARN("replication listener: attach at lsn " << attach_lsn
                << " failed: " << base.status());
    conn->nc->Close();
    return;
  }
  conn->attached.store(true, std::memory_order_release);
  if (conn->done.load(std::memory_order_acquire)) {
    // Lost a race with the close handler, whose detach may have been a
    // no-op; undo the attach ourselves.
    propagator_->DetachSink(&conn->sink);
    return;
  }
  replay_attaches_.fetch_add(1, std::memory_order_relaxed);
  std::string welcome(1, kReplWelcomeTag);
  PutVarint(&welcome, *base);
  std::string wire;
  AppendTcpFrame(&wire, welcome);
  conn->nc->Write(std::move(wire));
  // The replay burst is already sitting in the sink; pump it.
  std::weak_ptr<Conn> weak = conn;
  SchedulePump(weak);
}

void ReplicationListener::WriteFrame(Conn* conn, std::string_view payload) {
  std::string wire;
  wire.reserve(payload.size() + 4);
  AppendTcpFrame(&wire, payload);
  conn->nc->Write(std::move(wire));
  frames_sent_.fetch_add(1, std::memory_order_relaxed);
}

void ReplicationListener::EmitBatch(Conn* conn) {
  if (conn->pending_n == 0) return;
  std::string payload(1, kReplBatchTag);
  PutVarint(&payload, conn->pending_n);
  payload.append(conn->pending_body);
  WriteFrame(conn, payload);
  batch_frames_sent_.fetch_add(1, std::memory_order_relaxed);
  records_streamed_.fetch_add(conn->pending_n, std::memory_order_relaxed);
  conn->pending_body.clear();
  conn->pending_n = 0;
}

void ReplicationListener::PumpConn(const std::shared_ptr<Conn>& conn) {
  if (!conn->attached.load(std::memory_order_acquire) ||
      conn->done.load(std::memory_order_acquire)) {
    return;
  }
  for (;;) {
    if (conn->nc->output_bytes() >= options_.max_output_bytes) {
      // Stop pulling from the propagator for this sink; the drain callback
      // resumes the pump. Records stay queued in the sink meanwhile.
      if (!conn->stalled) {
        conn->stalled = true;
        backpressure_stalls_.fetch_add(1, std::memory_order_relaxed);
      }
      return;
    }
    if (!options_.batching) {
      auto record = conn->sink.TryPop();
      if (!record.has_value()) break;
      std::string payload(1, kReplDataTag);
      EncodeRecord(*record, &payload);
      WriteFrame(conn.get(), payload);
      records_streamed_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    auto batch =
        conn->sink.TryPopBatch(options_.max_batch_records - conn->pending_n);
    if (batch.empty()) break;
    for (auto& record : batch) {
      EncodeRecord(record, &conn->pending_body);
      ++conn->pending_n;
      if (conn->pending_n >= options_.max_batch_records ||
          conn->pending_body.size() >= options_.max_batch_bytes) {
        EmitBatch(conn.get());
      }
    }
  }
  // Sink ran dry. Flush the partial batch now, or hold it briefly if the
  // deployment prefers fuller frames over latency.
  if (conn->pending_n > 0) {
    if (options_.batch_flush_interval.count() <= 0) {
      EmitBatch(conn.get());
    } else if (!conn->flush_timer_armed) {
      conn->flush_timer_armed = true;
      std::weak_ptr<Conn> weak = conn;
      conn->flush_timer = loop_->ScheduleAfter(
          options_.batch_flush_interval, [this, weak] {
            auto c = weak.lock();
            if (!c || c->done.load(std::memory_order_acquire)) return;
            c->flush_timer_armed = false;
            if (c->nc->output_bytes() >= options_.max_output_bytes) {
              // The deadline does not override the output ceiling: stall,
              // and let the drain callback's pump emit (or re-arm for) the
              // held batch once the buffer comes back under the watermark.
              if (!c->stalled) {
                c->stalled = true;
                backpressure_stalls_.fetch_add(1, std::memory_order_relaxed);
              }
              return;
            }
            EmitBatch(c.get());
          });
    }
  }
}

void ReplicationListener::OnConnClosed(const std::shared_ptr<Conn>& conn) {
  conn->done.store(true, std::memory_order_release);
  conn->sink.SetWakeup(nullptr);
  conn->sink.Close();
  // Safe even when the attach worker has not attached (no-op) or is racing
  // us (it re-checks done after attaching and detaches itself).
  propagator_->DetachSink(&conn->sink);
  if (conn->flush_timer_armed) {
    loop_->CancelTimer(conn->flush_timer);
    conn->flush_timer_armed = false;
  }
  // Retire the connection's wire counters and drop it from the live set
  // under one lock hold so stats() never sees the counters twice.
  std::lock_guard<std::mutex> lock(conns_mu_);
  for (auto it = conns_.begin(); it != conns_.end(); ++it) {
    if (it->get() == conn.get()) {
      conns_.erase(it);
      if (conn->nc) {
        const auto c = conn->nc->counters();
        retired_bytes_sent_.fetch_add(c.bytes_sent,
                                      std::memory_order_relaxed);
        retired_writev_calls_.fetch_add(c.writev_calls,
                                        std::memory_order_relaxed);
        retired_flushes_.fetch_add(c.flushes, std::memory_order_relaxed);
      }
      break;
    }
  }
}

// ---------------------------------------------------------------------------
// ReplicationReceiver

ReplicationReceiver::ReplicationReceiver(
    BlockingQueue<PropagationRecord>* downstream, Options options)
    : downstream_(downstream),
      options_(std::move(options)),
      backoff_(options_.reconnect_backoff,
               options_.reconnect_backoff_max > options_.reconnect_backoff
                   ? options_.reconnect_backoff_max
                   : options_.reconnect_backoff),
      rng_(options_.jitter_seed) {
  if (options_.ack_interval == 0) options_.ack_interval = 1;
  if (options_.loop != nullptr) {
    loop_ = options_.loop;
  } else {
    owned_loop_ = std::make_unique<net::EventLoop>();
    loop_ = owned_loop_.get();
  }
}

ReplicationReceiver::~ReplicationReceiver() { Stop(); }

void ReplicationReceiver::Start() {
  if (owned_loop_) owned_loop_->Start();
  started_ = true;
  loop_->RunInLoop([this] { StartDial(); });
}

void ReplicationReceiver::Stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) return;
  if (!started_) return;
  loop_->PostAndWait([this] {
    if (redial_timer_ != 0) {
      loop_->CancelTimer(redial_timer_);
      redial_timer_ = 0;
    }
    if (pending_fd_ >= 0) {
      loop_->RemoveFd(pending_fd_);
      ::close(pending_fd_);
      pending_fd_ = -1;
    }
    if (current_) current_->Close();
  });
  if (owned_loop_) owned_loop_->Stop();
}

void ReplicationReceiver::CutConnection() {
  // Synchronous (when called off-loop, as fault-injecting tests do): once
  // this returns, nothing more can arrive on the severed connection.
  auto cut = [this] {
    if (current_) current_->Close();
  };
  if (loop_->InLoop()) {
    cut();
  } else {
    loop_->PostAndWait(cut);
  }
}

ReplicationReceiver::Stats ReplicationReceiver::stats() const {
  Stats s;
  s.records_delivered = records_delivered_.load(std::memory_order_relaxed);
  s.duplicates_dropped = duplicates_dropped_.load(std::memory_order_relaxed);
  s.decode_rejected = decode_rejected_.load(std::memory_order_relaxed);
  s.reconnects = reconnects_.load(std::memory_order_relaxed);
  s.dial_attempts = dial_attempts_.load(std::memory_order_relaxed);
  s.frames_received = frames_received_.load(std::memory_order_relaxed);
  s.batch_frames_received =
      batch_frames_received_.load(std::memory_order_relaxed);
  s.bytes_received = bytes_received_.load(std::memory_order_relaxed);
  return s;
}

void ReplicationReceiver::StartDial() {
  if (stopping_.load(std::memory_order_acquire)) return;
  dial_attempts_.fetch_add(1, std::memory_order_relaxed);
  bool in_progress = false;
  const int fd =
      StartDialTcp(options_.primary_host, options_.primary_port, &in_progress);
  if (fd < 0) {
    ScheduleRedial();
    return;
  }
  if (!in_progress) {
    OnDialDone(fd, true);
    return;
  }
  pending_fd_ = fd;
  const std::uint64_t epoch = ++conn_epoch_;
  loop_->AddFd(fd, EPOLLOUT, [this, fd, epoch](std::uint32_t) {
    if (epoch != conn_epoch_ || pending_fd_ != fd) return;
    loop_->RemoveFd(fd);
    pending_fd_ = -1;
    OnDialDone(fd, FinishDial(fd));
  });
}

void ReplicationReceiver::OnDialDone(int fd, bool ok) {
  if (stopping_.load(std::memory_order_acquire)) {
    ::close(fd);
    return;
  }
  if (!ok) {
    ::close(fd);
    ScheduleRedial();
    return;
  }
  framer_ = TcpFramer();
  handshaken_ = false;
  since_ack_ = 0;
  net::Connection::Callbacks cbs;
  cbs.on_bytes = [this](net::Connection&, std::string_view bytes) {
    OnBytes(bytes);
  };
  cbs.on_close = [this](net::Connection&) { OnClosed(); };
  current_ = net::Connection::Adopt(loop_, fd, net::Connection::Options{},
                                    std::move(cbs));
  std::string hello(1, kReplHelloTag);
  PutVarint(&hello, next_expected_.load(std::memory_order_acquire));
  PutVarint(&hello, options_.from_lsn);
  std::string wire;
  AppendTcpFrame(&wire, hello);
  current_->Write(std::move(wire));
}

void ReplicationReceiver::OnBytes(std::string_view bytes) {
  bytes_received_.fetch_add(bytes.size(), std::memory_order_relaxed);
  if (!framer_.Feed(bytes)) {
    if (current_) current_->Close();
    return;
  }
  while (auto frame = framer_.Next()) {
    HandleFrame(*frame);
    if (!current_ || current_->closed()) return;
  }
  if (framer_.poisoned() && current_) current_->Close();
}

void ReplicationReceiver::HandleFrame(const std::string& frame) {
  if (frame.empty()) return;
  frames_received_.fetch_add(1, std::memory_order_relaxed);
  if (!handshaken_) {
    if (frame[0] != kReplWelcomeTag) return;  // tolerate stray frames
    handshaken_ = true;
    if (had_connection_) {
      reconnects_.fetch_add(1, std::memory_order_relaxed);
    }
    had_connection_ = true;
    backoff_.Reset();
    return;
  }
  if (frame[0] == kReplDataTag) {
    std::size_t off = 1;
    auto record = DecodeRecord(frame, &off);
    if (!record.ok()) {
      // An undecodable record means the stream itself is damaged; drop the
      // connection and let the re-HELLO replay a clean suffix.
      decode_rejected_.fetch_add(1, std::memory_order_relaxed);
      LAZYSI_WARN("replication receiver: undecodable record: "
                  << record.status());
      current_->Close();
      return;
    }
    if (!HandleRecord(std::move(*record)) && current_) current_->Close();
    return;
  }
  if (frame[0] == kReplBatchTag) {
    batch_frames_received_.fetch_add(1, std::memory_order_relaxed);
    std::size_t off = 0;
    std::vector<PropagationRecord> records;
    if (!DecodeBatchFramePayload(frame, &off, &records)) {
      // Malformed count, record, or trailing garbage: damaged stream.
      // Nothing from the batch is applied — the reconnect replay
      // redelivers it cleanly and seq dedup drops any overlap.
      decode_rejected_.fetch_add(1, std::memory_order_relaxed);
      LAZYSI_WARN("replication receiver: undecodable batch frame");
      current_->Close();
      return;
    }
    for (auto& record : records) {
      if (!HandleRecord(std::move(record))) {
        if (current_) current_->Close();
        return;
      }
      // The ACK write inside HandleRecord can fail inline (peer reset),
      // which closes the connection and resets current_ via OnClosed; the
      // rest of the batch must not touch the dead connection — the
      // reconnect replay redelivers it and seq dedup drops the overlap.
      if (!current_ || current_->closed()) return;
    }
    return;
  }
  // Unknown tag between handshakes: ignore for forward compatibility.
}

bool ReplicationReceiver::HandleRecord(PropagationRecord record) {
  const std::uint64_t seq = RecordSeq(record);
  const std::uint64_t expected =
      next_expected_.load(std::memory_order_acquire);
  if (seq < expected) {
    // Replay overlap below our position: the sync point the primary
    // attached at quantizes downward. Idempotent to skip.
    duplicates_dropped_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  if (seq > expected) {
    // A gap inside one TCP connection should be impossible; treat it as a
    // damaged stream and resync via reconnect rather than applying out of
    // order.
    LAZYSI_WARN("replication receiver: seq gap (want " << expected
                << ", got " << seq << "), resyncing");
    return false;
  }
  downstream_->Push(std::move(record));
  next_expected_.store(seq + 1, std::memory_order_release);
  records_delivered_.fetch_add(1, std::memory_order_relaxed);
  if (++since_ack_ >= options_.ack_interval) {
    std::string ack(1, kReplAckTag);
    PutVarint(&ack, seq);
    std::string wire;
    AppendTcpFrame(&wire, ack);
    // A previous ACK in this batch may have failed inline and torn the
    // connection down (current_ reset by OnClosed); the record itself is
    // applied either way, the ack just waits for the reconnect.
    if (current_) current_->Write(std::move(wire));
    since_ack_ = 0;
  }
  return true;
}

void ReplicationReceiver::OnClosed() {
  current_.reset();
  ++conn_epoch_;
  if (!stopping_.load(std::memory_order_acquire)) ScheduleRedial();
}

void ReplicationReceiver::ScheduleRedial() {
  if (stopping_.load(std::memory_order_acquire) || redial_timer_ != 0) {
    return;
  }
  const auto delay =
      Jittered(backoff_.Next(), options_.reconnect_jitter, &rng_);
  redial_timer_ = loop_->ScheduleAfter(delay, [this] {
    redial_timer_ = 0;
    StartDial();
  });
}

}  // namespace replication
}  // namespace lazysi
