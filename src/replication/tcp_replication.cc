#include "replication/tcp_replication.h"

#include <sys/socket.h>
#include <unistd.h>

#include <utility>

#include "common/logging.h"
#include "replication/wire.h"

namespace lazysi {
namespace replication {

namespace {

// One-byte frame tags of the cross-process propagation stream.
constexpr char kHelloTag = 'H';    // secondary -> primary: expected, from_lsn
constexpr char kWelcomeTag = 'W';  // primary -> secondary: base seq
constexpr char kDataTag = 'D';     // primary -> secondary: one record
constexpr char kAckTag = 'A';      // secondary -> primary: cumulative seq

}  // namespace

// ---------------------------------------------------------------------------
// ReplicationListener

ReplicationListener::ReplicationListener(Propagator* propagator,
                                         Options options)
    : propagator_(propagator), options_(std::move(options)) {}

ReplicationListener::~ReplicationListener() { Stop(); }

Status ReplicationListener::Start() {
  listen_fd_ = ListenOn(options_.host, options_.port, &port_);
  if (listen_fd_ < 0) {
    return Status::Unavailable("replication listener: cannot bind " +
                               options_.host);
  }
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void ReplicationListener::Stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) return;
  // shutdown() (not close()) reliably wakes a thread blocked in accept().
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  std::lock_guard<std::mutex> lock(conns_mu_);
  for (auto& conn : conns_) {
    conn->sink.Close();          // wakes the sender's blocking Pop
    if (conn->sock) conn->sock->ShutdownNow();  // wakes the acker's Recv
  }
  for (auto& conn : conns_) {
    if (conn->sender.joinable()) conn->sender.join();
  }
  conns_.clear();
}

std::uint64_t ReplicationListener::MinAckFloor() const {
  std::uint64_t floor = UINT64_MAX;
  std::lock_guard<std::mutex> lock(conns_mu_);
  for (const auto& conn : conns_) {
    if (conn->done.load(std::memory_order_acquire)) continue;
    const std::uint64_t acked = conn->acked.load(std::memory_order_relaxed);
    // A freshly-accepted connection (acked 0) maps to the oldest retained
    // sync point, which conservatively pins the floor at the current log
    // base — truncation merely pauses until acks flow.
    floor = std::min<std::uint64_t>(
        floor, propagator_->SyncPointAtOrBefore(acked).lsn);
  }
  return floor;
}

ReplicationListener::Stats ReplicationListener::stats() const {
  Stats s;
  s.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  s.records_streamed = records_streamed_.load(std::memory_order_relaxed);
  s.replay_attaches = replay_attaches_.load(std::memory_order_relaxed);
  return s;
}

void ReplicationListener::AcceptLoop() {
  for (;;) {
    const int fd = AcceptOn(listen_fd_);
    if (fd < 0) break;  // listener shut down (Stop) or irrecoverably broken
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    auto conn = std::make_unique<Conn>();
    conn->sock = std::make_unique<FramedSocket>(fd);
    Conn* raw = conn.get();
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.push_back(std::move(conn));
    }
    raw->sender = std::thread([this, raw] { ServeConnection(raw); });
  }
}

void ReplicationListener::ServeConnection(Conn* conn) {
  // Marks the connection dead for MinAckFloor on every exit path.
  struct DoneMarker {
    Conn* c;
    ~DoneMarker() { c->done.store(true, std::memory_order_release); }
  } done_marker{conn};

  // Handshake: the secondary leads with HELLO { expected_seq, from_lsn }.
  const auto hello = conn->sock->Recv();
  if (!hello.has_value() || hello->empty() || (*hello)[0] != kHelloTag) {
    return;  // peer vanished or spoke the wrong protocol; drop silently
  }
  std::size_t off = 1;
  std::uint64_t expected = 0;
  std::uint64_t from_lsn = 0;
  if (!GetVarint(*hello, &off, &expected) ||
      !GetVarint(*hello, &off, &from_lsn)) {
    LAZYSI_WARN("replication listener: malformed HELLO, dropping connection");
    return;
  }

  // A resuming secondary (expected > 0) replays from the latest quiesced
  // point at or below its position; a fresh one (expected == 0, e.g. after
  // kill -9) replays the log from its checkpoint LSN — 0 = everything.
  std::size_t attach_lsn = static_cast<std::size_t>(from_lsn);
  if (expected > 0) {
    attach_lsn = propagator_->SyncPointAtOrBefore(expected).lsn;
  }
  auto base = propagator_->AttachSinkAt(&conn->sink, attach_lsn);
  if (!base.ok()) {
    LAZYSI_WARN("replication listener: attach at lsn " << attach_lsn
                << " failed: " << base.status());
    return;
  }
  replay_attaches_.fetch_add(1, std::memory_order_relaxed);

  std::string welcome(1, kWelcomeTag);
  PutVarint(&welcome, *base);
  if (!conn->sock->Send(welcome)) {
    propagator_->DetachSink(&conn->sink);
    return;
  }

  // Acks flow on the same socket; a dedicated reader keeps them from
  // backing up behind the data stream. It exits on EOF/shutdown.
  conn->acker = std::thread([conn] {
    while (auto frame = conn->sock->Recv()) {
      if (frame->size() < 2 || (*frame)[0] != kAckTag) continue;
      std::size_t o = 1;
      std::uint64_t acked = 0;
      if (GetVarint(*frame, &o, &acked)) {
        conn->acked.store(acked, std::memory_order_relaxed);
      }
    }
  });

  for (;;) {
    auto record = conn->sink.Pop();
    if (!record.has_value()) break;  // Stop() closed the sink
    std::string wire(1, kDataTag);
    EncodeRecord(*record, &wire);
    if (!conn->sock->Send(wire)) break;  // peer gone; it will re-HELLO
    records_streamed_.fetch_add(1, std::memory_order_relaxed);
  }

  propagator_->DetachSink(&conn->sink);
  conn->sock->ShutdownNow();
  if (conn->acker.joinable()) conn->acker.join();
}

// ---------------------------------------------------------------------------
// ReplicationReceiver

ReplicationReceiver::ReplicationReceiver(
    BlockingQueue<PropagationRecord>* downstream, Options options)
    : downstream_(downstream), options_(std::move(options)) {
  if (options_.ack_interval == 0) options_.ack_interval = 1;
}

ReplicationReceiver::~ReplicationReceiver() { Stop(); }

void ReplicationReceiver::Start() {
  runner_ = std::thread([this] { Run(); });
}

void ReplicationReceiver::Stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) return;
  {
    std::lock_guard<std::mutex> lock(sock_mu_);
    if (sock_) sock_->ShutdownNow();  // wakes a blocked Recv
  }
  if (runner_.joinable()) runner_.join();
}

void ReplicationReceiver::CutConnection() {
  std::lock_guard<std::mutex> lock(sock_mu_);
  if (sock_) sock_->ShutdownNow();
}

ReplicationReceiver::Stats ReplicationReceiver::stats() const {
  Stats s;
  s.records_delivered = records_delivered_.load(std::memory_order_relaxed);
  s.duplicates_dropped = duplicates_dropped_.load(std::memory_order_relaxed);
  s.decode_rejected = decode_rejected_.load(std::memory_order_relaxed);
  s.reconnects = reconnects_.load(std::memory_order_relaxed);
  return s;
}

void ReplicationReceiver::Run() {
  while (!stopping_.load(std::memory_order_acquire)) {
    RunOnce();
    if (stopping_.load(std::memory_order_acquire)) break;
    std::this_thread::sleep_for(options_.reconnect_backoff);
  }
}

bool ReplicationReceiver::RunOnce() {
  const int fd = DialTcp(options_.primary_host, options_.primary_port);
  if (fd < 0) return false;
  auto sock = std::make_shared<FramedSocket>(fd);
  {
    std::lock_guard<std::mutex> lock(sock_mu_);
    if (stopping_.load(std::memory_order_acquire)) return false;
    sock_ = sock;
  }

  std::string hello(1, kHelloTag);
  PutVarint(&hello, next_expected_.load(std::memory_order_acquire));
  PutVarint(&hello, options_.from_lsn);
  bool handshaken = false;
  if (sock->Send(hello)) {
    const auto welcome = sock->Recv();
    handshaken = welcome.has_value() && !welcome->empty() &&
                 (*welcome)[0] == kWelcomeTag;
  }
  if (handshaken && had_connection_) {
    reconnects_.fetch_add(1, std::memory_order_relaxed);
  }
  had_connection_ = had_connection_ || handshaken;

  std::size_t since_ack = 0;
  while (handshaken) {
    const auto frame = sock->Recv();
    if (!frame.has_value()) break;  // connection dropped; re-HELLO outside
    if (frame->empty() || (*frame)[0] != kDataTag) continue;
    std::size_t off = 1;
    auto record = DecodeRecord(*frame, &off);
    if (!record.ok()) {
      // An undecodable record means the stream itself is damaged; drop the
      // connection and let the re-HELLO replay a clean suffix.
      decode_rejected_.fetch_add(1, std::memory_order_relaxed);
      LAZYSI_WARN("replication receiver: undecodable record: "
                  << record.status());
      break;
    }
    const std::uint64_t seq = RecordSeq(*record);
    const std::uint64_t expected =
        next_expected_.load(std::memory_order_acquire);
    if (seq < expected) {
      // Replay overlap below our position: the sync point the primary
      // attached at quantizes downward. Idempotent to skip.
      duplicates_dropped_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (seq > expected) {
      // A gap inside one TCP connection should be impossible; treat it as a
      // damaged stream and resync via reconnect rather than applying out of
      // order.
      LAZYSI_WARN("replication receiver: seq gap (want " << expected
                  << ", got " << seq << "), resyncing");
      break;
    }
    downstream_->Push(std::move(*record));
    next_expected_.store(seq + 1, std::memory_order_release);
    records_delivered_.fetch_add(1, std::memory_order_relaxed);
    if (++since_ack >= options_.ack_interval) {
      std::string ack(1, kAckTag);
      PutVarint(&ack, seq);
      if (!sock->Send(ack)) break;
      since_ack = 0;
    }
  }

  {
    std::lock_guard<std::mutex> lock(sock_mu_);
    sock_.reset();
  }
  sock->ShutdownNow();
  return handshaken;
}

}  // namespace replication
}  // namespace lazysi
