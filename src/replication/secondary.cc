#include "replication/secondary.h"

#include "common/logging.h"

namespace lazysi {
namespace replication {

Secondary::Secondary(engine::Database* db, SecondaryOptions options)
    : db_(db), options_(options) {
  if (options_.applicator_threads == 0) options_.applicator_threads = 1;
  if (options_.group_apply_limit == 0) options_.group_apply_limit = 1;
  // Publish the local->primary commit-timestamp translation atomically with
  // version visibility (the hook runs under the engine's timestamp mutex),
  // so any reader whose snapshot includes a refresh commit can translate it.
  db_->SetCommitHook([this](TxnId local_txn, Timestamp local_commit_ts) {
    std::unique_lock lock(translate_mu_);
    auto it = pending_translation_.find(local_txn);
    if (it != pending_translation_.end()) {
      local_to_primary_[local_commit_ts] = it->second;
      pending_translation_.erase(it);
    }
  });
}

Secondary::~Secondary() { Stop(); }

void Secondary::Start() {
  if (started_) return;
  started_ = true;
  // A restart after Stop() finds every queue closed; reopen them so the new
  // threads actually run instead of exiting immediately while started_
  // claims the site is live. Records broadcast while stopped were dropped by
  // the closed update queue (Section 3.4's failure model) — replication
  // resumes from the next record the propagator pushes.
  update_queue_.Reopen();
  tasks_.Reopen();
  direct_tasks_.Reopen();
  pending_queue_.Reopen();
  refresher_ = std::thread([this] { RefresherLoop(); });
  applicators_.reserve(options_.applicator_threads);
  for (std::size_t i = 0; i < options_.applicator_threads; ++i) {
    if (options_.direct_apply) {
      applicators_.emplace_back([this] { DirectApplicatorLoop(); });
    } else {
      applicators_.emplace_back([this] { ApplicatorLoop(); });
    }
  }
}

void Secondary::Stop() {
  if (!started_) return;
  update_queue_.Close();
  refresher_.join();
  tasks_.Close();
  direct_tasks_.Close();
  pending_queue_.Close();
  // Legacy applicators abort whatever WaitHead hands back after the close;
  // direct applicators instead drain direct_tasks_ completely (Pop after
  // Close returns queued items), because every queued task's commit record
  // and timestamp are already published and skipping its installation would
  // wedge the visibility watermark below it forever.
  for (auto& t : applicators_) t.join();
  applicators_.clear();
  refresh_txns_.clear();  // aborts leftovers via RAII
  direct_txns_.clear();
  started_ = false;
}

bool Secondary::WaitForSeq(Timestamp seq,
                           std::chrono::milliseconds timeout) const {
  if (applied_seq() >= seq) return true;
  std::unique_lock<std::mutex> lock(seq_mu_);
  return seq_cv_.wait_for(lock, timeout, [&] { return applied_seq() >= seq; });
}

void Secondary::InitializeSeq(Timestamp seq, Timestamp local_install_ts) {
  {
    std::unique_lock lock(translate_mu_);
    local_to_primary_[local_install_ts] = seq;
  }
  AdvanceSeq(seq);
}

Timestamp Secondary::TranslateLocalToPrimary(Timestamp local_ts) const {
  std::shared_lock lock(translate_mu_);
  auto it = local_to_primary_.find(local_ts);
  return it == local_to_primary_.end() ? kInvalidTimestamp : it->second;
}

std::size_t Secondary::PruneTranslations(Timestamp primary_horizon) {
  std::unique_lock lock(translate_mu_);
  std::size_t erased = 0;
  for (auto it = local_to_primary_.begin(); it != local_to_primary_.end();) {
    if (it->second < primary_horizon) {
      it = local_to_primary_.erase(it);
      ++erased;
    } else {
      ++it;
    }
  }
  return erased;
}

std::size_t Secondary::translation_count() const {
  std::shared_lock lock(translate_mu_);
  return local_to_primary_.size() + pending_translation_.size();
}

void Secondary::AdvanceSeq(Timestamp primary_commit_ts) {
  {
    std::lock_guard<std::mutex> lock(seq_mu_);
    Timestamp current = applied_seq_.load(std::memory_order_relaxed);
    if (primary_commit_ts > current) {
      applied_seq_.store(primary_commit_ts, std::memory_order_release);
    }
  }
  seq_cv_.notify_all();
}

void Secondary::AdvanceSeqToWatermark(Timestamp local_watermark) {
  // The watermark can jump past commits other applicator threads installed
  // (their FinishExternalCommit returned before ours unblocked the prefix),
  // so seq(DBsec) is driven off the FIFO of allocated refresh commits, not
  // off this thread's own task: pop everything visibility has passed and
  // advance to the newest primary timestamp among them.
  Timestamp newest_primary = kInvalidTimestamp;
  {
    std::lock_guard<std::mutex> lock(visibility_mu_);
    while (!visibility_fifo_.empty() &&
           visibility_fifo_.front().first <= local_watermark) {
      newest_primary = visibility_fifo_.front().second;
      visibility_fifo_.pop_front();
    }
  }
  if (newest_primary != kInvalidTimestamp) AdvanceSeq(newest_primary);
}

void Secondary::RefresherLoop() {
  // Algorithm 3.2. Records are drained in batches — one queue lock
  // round-trip per burst instead of one per record — but still processed
  // strictly in FIFO (= primary log) order, which is what Lemmas 3.1-3.3
  // require of the refresh schedule.
  for (;;) {
    std::vector<PropagationRecord> batch =
        update_queue_.PopBatch(kRefresherBatchSize);
    if (batch.empty()) return;  // closed and drained
    bool shutdown = false;
    for (PropagationRecord& record : batch) {
      if (options_.direct_apply) {
        DirectRefreshRecord(record);
      } else {
        LegacyRefreshRecord(record, &shutdown);
        if (shutdown) return;
      }
    }
  }
}

void Secondary::DirectRefreshRecord(PropagationRecord& record) {
  txn::TxnManager* tm = db_->txn_manager();
  if (auto* start = std::get_if<PropStart>(&record)) {
    // Emit the local start record immediately — no pending-queue drain. The
    // refresh transaction's snapshot is defined by its position in the log:
    // it sees exactly the refresh commits whose records precede it, which the
    // visibility watermark will have installed before any timestamp at or
    // past this start is handed to a reader. That is the guarantee the old
    // WaitEmpty stall bought, for free.
    const TxnId local_id = tm->AllocateTxnId();
    tm->ExternalStart(local_id);
    direct_txns_[start->txn_id] = local_id;
  } else if (auto* commit = std::get_if<PropCommit>(&record)) {
    TxnId local_id;
    auto it = direct_txns_.find(commit->txn_id);
    if (it != direct_txns_.end()) {
      local_id = it->second;
      direct_txns_.erase(it);
    } else {
      // Commit for a transaction whose start record we never saw. This
      // happens only for sinks attached mid-stream without a quiesced
      // checkpoint; recover by starting the refresh transaction now (its
      // updates are value writes, so a later snapshot is safe).
      LAZYSI_WARN("secondary: commit without start record, txn="
                  << commit->txn_id);
      local_id = tm->AllocateTxnId();
      tm->ExternalStart(local_id);
    }
    auto writes = std::make_unique<storage::WriteSet>();
    for (const storage::Write& w : commit->updates) {
      if (w.deleted) {
        writes->Delete(w.key);
      } else {
        writes->Put(w.key, w.value);
      }
    }
    {
      // Stage the translation before allocating the local commit timestamp:
      // BeginExternalCommit runs the commit hook synchronously, and the hook
      // must find the staged primary timestamp.
      std::unique_lock lock(translate_mu_);
      pending_translation_[local_id] = commit->commit_ts;
    }
    // Local commit timestamps are allocated here, on the single refresher
    // thread, in primary-commit order — local refresh commit order equals
    // primary commit order by construction (Lemma 3.3), regardless of how
    // the applicator pool interleaves the installations below.
    const Timestamp local_ts = tm->BeginExternalCommit(local_id, *writes);
    {
      std::lock_guard<std::mutex> lock(visibility_mu_);
      visibility_fifo_.emplace_back(local_ts, commit->commit_ts);
    }
    direct_tasks_.Push(
        DirectTask{std::move(writes), local_ts, commit->commit_ts});
  } else if (auto* abort = std::get_if<PropAbort>(&record)) {
    auto abort_it = direct_txns_.find(abort->txn_id);
    if (abort_it != direct_txns_.end()) {
      tm->ExternalAbort(abort_it->second);
      direct_txns_.erase(abort_it);
    }
  }
}

void Secondary::LegacyRefreshRecord(PropagationRecord& record, bool* shutdown) {
  if (auto* start = std::get_if<PropStart>(&record)) {
    // Block until the pending queue is empty so the new refresh
    // transaction's snapshot includes every refresh commit that precedes
    // it in primary order.
    if (!pending_queue_.WaitEmpty()) {
      *shutdown = true;
      return;
    }
    refresh_txns_[start->txn_id] = db_->Begin(/*read_only=*/false);
  } else if (auto* commit = std::get_if<PropCommit>(&record)) {
    std::unique_ptr<txn::Transaction> txn;
    auto it = refresh_txns_.find(commit->txn_id);
    if (it != refresh_txns_.end()) {
      txn = std::move(it->second);
      refresh_txns_.erase(it);
    } else {
      // See the direct-path comment: mid-stream attach without a checkpoint.
      LAZYSI_WARN("secondary: commit without start record, txn="
                  << commit->txn_id);
      if (!pending_queue_.WaitEmpty()) {
        *shutdown = true;
        return;
      }
      txn = db_->Begin(/*read_only=*/false);
    }
    pending_queue_.Append(commit->commit_ts);
    tasks_.Push(ApplyTask{std::move(txn), std::move(commit->updates),
                          commit->commit_ts});
  } else if (auto* abort = std::get_if<PropAbort>(&record)) {
    // Abandon the refresh transaction; Transaction's destructor aborts it.
    refresh_txns_.erase(abort->txn_id);
  }
}

void Secondary::DirectApplicatorLoop() {
  // Algorithm 3.3, group-apply form: drain a run of consecutive refresh
  // commits and install all their writes in one store pass. Tasks arrive in
  // local-commit-timestamp order (single refresher producer), so each batch
  // is an increasing run, as ApplyBatch requires. No ordering wait is needed
  // before installation — the visibility watermark serializes *publication*
  // in timestamp order, so installation itself can proceed in parallel.
  for (;;) {
    std::vector<DirectTask> batch =
        direct_tasks_.PopBatch(options_.group_apply_limit);
    if (batch.empty()) return;  // closed and drained
    std::vector<storage::VersionedStore::TimestampedWrites> installs;
    installs.reserve(batch.size());
    for (const DirectTask& task : batch) {
      installs.push_back({task.writes.get(), task.local_commit_ts});
    }
    db_->store()->ApplyBatch(installs);
    group_applies_.fetch_add(1, std::memory_order_relaxed);
    group_applied_commits_.fetch_add(batch.size(), std::memory_order_relaxed);
    std::uint64_t prev = max_group_apply_.load(std::memory_order_relaxed);
    while (batch.size() > prev &&
           !max_group_apply_.compare_exchange_weak(prev, batch.size(),
                                                   std::memory_order_relaxed)) {
    }
    // Mark the whole group installed, then advance seq(DBsec) once: the
    // watermark is monotone, so the last returned value covers everything
    // this batch (and possibly other threads' batches) unblocked —
    // AdvanceSeqToWatermark credits those too.
    Timestamp watermark = kInvalidTimestamp;
    for (const DirectTask& task : batch) {
      watermark = db_->txn_manager()->FinishExternalCommit(task.local_commit_ts);
    }
    refreshed_count_.fetch_add(batch.size(), std::memory_order_relaxed);
    AdvanceSeqToWatermark(watermark);
  }
}

void Secondary::ApplicatorLoop() {
  // Algorithm 3.3, one iteration per task.
  while (auto task = tasks_.Pop()) {
    for (const auto& w : task->updates) {
      Status s = w.deleted ? task->txn->Delete(w.key)
                           : task->txn->Put(w.key, w.value);
      if (!s.ok()) {
        LAZYSI_ERROR("applicator: buffering update failed: " << s);
      }
    }
    // Commit only when our primary commit timestamp reaches the head of the
    // pending queue, so local refresh commit order equals primary commit
    // order (Lemma 3.3).
    if (!pending_queue_.WaitHead(task->commit_ts)) {
      // Shutdown: abandon the refresh transaction.
      task->txn->Abort();
      continue;
    }
    {
      // Stage the translation; the commit hook publishes it under the
      // timestamp mutex when the commit installs its versions.
      std::unique_lock lock(translate_mu_);
      pending_translation_[task->txn->id()] = task->commit_ts;
    }
    Status s = task->txn->Commit();
    if (!s.ok()) {
      // Cannot happen for refresh transactions: concurrent refreshes have
      // disjoint write sets (conflicting primary transactions are never
      // concurrent after FCW at the primary), and the local control is
      // deadlock-free. Surface loudly if the invariant is ever broken.
      LAZYSI_ERROR("applicator: refresh commit failed: " << s);
      std::unique_lock lock(translate_mu_);
      pending_translation_.erase(task->txn->id());
    } else {
      refreshed_count_.fetch_add(1, std::memory_order_relaxed);
      // seq(DBsec) := commit_p(T), then remove from the pending queue
      // (Section 4's ordering: set before delete).
      AdvanceSeq(task->commit_ts);
    }
    pending_queue_.PopHead(task->commit_ts);
  }
}

}  // namespace replication
}  // namespace lazysi
