#include "replication/secondary.h"

#include <algorithm>

#include "common/logging.h"

namespace lazysi {
namespace replication {

Secondary::Secondary(engine::Database* db, SecondaryOptions options)
    : db_(db), options_(options) {
  if (options_.applicator_threads == 0) options_.applicator_threads = 1;
  if (options_.group_apply_limit == 0) options_.group_apply_limit = 1;
  parallel_engine_ = options_.direct_apply && options_.decode_threads > 0;
  // Publish the local->primary commit-timestamp translation atomically with
  // version visibility (the hook runs under the engine's timestamp mutex),
  // so any reader whose snapshot includes a refresh commit can translate it.
  db_->SetCommitHook([this](TxnId local_txn, Timestamp local_commit_ts) {
    std::unique_lock lock(translate_mu_);
    auto it = pending_translation_.find(local_txn);
    if (it != pending_translation_.end()) {
      local_to_primary_[local_commit_ts] = it->second;
      // Refresh commits allocate local timestamps in primary-commit order,
      // so appending here keeps the deque ascending in both coordinates.
      primary_local_order_.emplace_back(it->second, local_commit_ts);
      pending_translation_.erase(it);
    }
  });
}

Secondary::~Secondary() { Stop(); }

void Secondary::Start() {
  if (started_) return;
  started_ = true;
  // A restart after Stop() finds every queue closed; reopen them so the new
  // threads actually run instead of exiting immediately while started_
  // claims the site is live. Records broadcast while stopped were dropped by
  // the closed update queue (Section 3.4's failure model) — replication
  // resumes from the next record the propagator pushes.
  update_queue_.Reopen();
  tasks_.Reopen();
  direct_tasks_.Reopen();
  pending_queue_.Reopen();
  decode_queue_.Reopen();
  reorder_.Reset();
  scheduler_.Reopen();
  applicators_.reserve(options_.applicator_threads);
  if (parallel_engine_) {
    refresher_ = std::thread([this] { IngestLoop(); });
    decoders_.reserve(options_.decode_threads);
    for (std::size_t i = 0; i < options_.decode_threads; ++i) {
      decoders_.emplace_back([this] { DecodeLoop(); });
    }
    sequencer_ = std::thread([this] { SequencerLoop(); });
    for (std::size_t i = 0; i < options_.applicator_threads; ++i) {
      applicators_.emplace_back([this] { ParallelApplicatorLoop(); });
    }
    return;
  }
  refresher_ = std::thread([this] { RefresherLoop(); });
  for (std::size_t i = 0; i < options_.applicator_threads; ++i) {
    if (options_.direct_apply) {
      applicators_.emplace_back([this] { DirectApplicatorLoop(); });
    } else {
      applicators_.emplace_back([this] { ApplicatorLoop(); });
    }
  }
}

void Secondary::Stop() {
  if (!started_) return;
  update_queue_.Close();
  refresher_.join();
  if (parallel_engine_) {
    // Stage-by-stage shutdown, upstream first, each stage fully drained
    // before the next closes. Nothing past ingest may be dropped: a decoded
    // commit the sequencer already allocated has its commit record in the
    // local log, and abandoning its installation would wedge the visibility
    // watermark below it forever. Draining in stage order also means the
    // reorder buffer holds a gapless set when the sequencer does its final
    // pops, so the contiguous-prefix pop empties it completely.
    decode_queue_.Close();
    for (auto& t : decoders_) t.join();
    decoders_.clear();
    reorder_.Close();
    sequencer_.join();
    scheduler_.Close();
    for (auto& t : applicators_) t.join();
    applicators_.clear();
    direct_txns_.clear();
    started_ = false;
    return;
  }
  tasks_.Close();
  direct_tasks_.Close();
  pending_queue_.Close();
  // Legacy applicators abort whatever WaitHead hands back after the close;
  // direct applicators instead drain direct_tasks_ completely (Pop after
  // Close returns queued items), because every queued task's commit record
  // and timestamp are already published and skipping its installation would
  // wedge the visibility watermark below it forever.
  for (auto& t : applicators_) t.join();
  applicators_.clear();
  refresh_txns_.clear();  // aborts leftovers via RAII
  direct_txns_.clear();
  started_ = false;
}

bool Secondary::WaitForSeq(Timestamp seq,
                           std::chrono::milliseconds timeout) const {
  if (applied_seq() >= seq) return true;
  std::unique_lock<std::mutex> lock(seq_mu_);
  return seq_cv_.wait_for(lock, timeout, [&] { return applied_seq() >= seq; });
}

void Secondary::InitializeSeq(Timestamp seq, Timestamp local_install_ts) {
  {
    std::unique_lock lock(translate_mu_);
    local_to_primary_[local_install_ts] = seq;
    // A checkpoint install contains *all* primary commits <= seq, so the
    // (seq, install) pair is a valid bound entry for every snapshot at or
    // below it.
    primary_local_order_.emplace_back(seq, local_install_ts);
  }
  AdvanceSeq(seq);
}

Timestamp Secondary::TranslateLocalToPrimary(Timestamp local_ts) const {
  std::shared_lock lock(translate_mu_);
  auto it = local_to_primary_.find(local_ts);
  return it == local_to_primary_.end() ? kInvalidTimestamp : it->second;
}

std::size_t Secondary::PruneTranslations(Timestamp primary_horizon) {
  std::unique_lock lock(translate_mu_);
  std::size_t erased = 0;
  for (auto it = local_to_primary_.begin(); it != local_to_primary_.end();) {
    if (it->second < primary_horizon) {
      it = local_to_primary_.erase(it);
      ++erased;
    } else {
      ++it;
    }
  }
  // Trim the bound deque too, but keep the newest entry below the horizon as
  // a boundary sentinel: a snapshot between that entry and the horizon still
  // resolves to the exact local bound (only per-version translation below
  // the horizon becomes approximate).
  while (primary_local_order_.size() >= 2 &&
         primary_local_order_[1].first < primary_horizon) {
    primary_local_order_.pop_front();
  }
  return erased;
}

Timestamp Secondary::PrimaryPrefixAtLocal(Timestamp local_snapshot_ts) const {
  std::shared_lock lock(translate_mu_);
  // Last refresh commit with local ts <= the snapshot; both coordinates
  // ascend, so binary search on the local coordinate is valid.
  auto it = std::upper_bound(
      primary_local_order_.begin(), primary_local_order_.end(),
      local_snapshot_ts,
      [](Timestamp ls, const std::pair<Timestamp, Timestamp>& e) {
        return ls < e.second;
      });
  if (it == primary_local_order_.begin()) return 0;
  return std::prev(it)->first;
}

Result<Timestamp> Secondary::LocalBoundForPrimary(
    Timestamp primary_snapshot) const {
  std::shared_lock lock(translate_mu_);
  auto it = std::upper_bound(
      primary_local_order_.begin(), primary_local_order_.end(),
      primary_snapshot,
      [](Timestamp ps, const std::pair<Timestamp, Timestamp>& e) {
        return ps < e.first;
      });
  if (it == primary_local_order_.begin()) {
    if (primary_local_order_.empty()) {
      // No refresh commit ever: the empty local prefix is the exact image of
      // every primary prefix this replica has applied (none).
      return Timestamp(0);
    }
    return Status::FailedPrecondition(
        "primary snapshot below the translation-prune horizon");
  }
  return std::prev(it)->second;
}

Result<Secondary::RemoteRead> Secondary::ReadAtPrimarySnapshot(
    const std::string& key, Timestamp primary_snapshot) {
  if (applied_seq() < primary_snapshot) {
    return Status::Unavailable(
        "secondary has not applied the requested snapshot prefix");
  }
  // applied_seq >= snapshot means every refresh commit with primary ts <=
  // snapshot is appended and visible, so the bound below is at or under the
  // local watermark and BeginAtSnapshot accepts it. The pinned snapshot
  // keeps GC from pruning the versions this read needs.
  auto bound = LocalBoundForPrimary(primary_snapshot);
  if (!bound.ok()) return bound.status();
  auto txn = db_->BeginAtSnapshot(bound.value());
  if (!txn.ok()) return txn.status();
  RemoteRead out;
  auto value = (*txn)->Get(key);
  if (value.ok()) {
    out.found = true;
    out.value = std::move(value).value();
    if (!(*txn)->reads().empty()) {
      out.version_primary_ts =
          TranslateLocalToPrimary((*txn)->reads().back().version_commit_ts);
    }
  } else if (!value.status().IsNotFound()) {
    return value.status();
  }
  (void)(*txn)->Commit();
  remote_reads_served_.fetch_add(1, std::memory_order_relaxed);
  return out;
}

Result<std::vector<Secondary::RemoteScanItem>> Secondary::ScanAtPrimarySnapshot(
    const std::string& begin, const std::string& end,
    Timestamp primary_snapshot) {
  if (applied_seq() < primary_snapshot) {
    return Status::Unavailable(
        "secondary has not applied the requested snapshot prefix");
  }
  auto bound = LocalBoundForPrimary(primary_snapshot);
  if (!bound.ok()) return bound.status();
  auto txn = db_->BeginAtSnapshot(bound.value());
  if (!txn.ok()) return txn.status();
  auto result = (*txn)->Scan(begin, end);
  if (!result.ok()) return result.status();
  // Read-only scans observe exactly the returned keys, in the same sorted
  // order; pair them up to carry each version's primary timestamp out.
  const auto& observations = (*txn)->reads();
  std::vector<RemoteScanItem> out;
  out.reserve(result->size());
  for (std::size_t i = 0; i < result->size(); ++i) {
    RemoteScanItem item;
    item.key = std::move((*result)[i].first);
    item.value = std::move((*result)[i].second);
    if (i < observations.size() && observations[i].key == item.key) {
      item.version_primary_ts =
          TranslateLocalToPrimary(observations[i].version_commit_ts);
    }
    out.push_back(std::move(item));
  }
  (void)(*txn)->Commit();
  remote_reads_served_.fetch_add(1, std::memory_order_relaxed);
  return out;
}

void Secondary::CountIncoming(const PropagationRecord& record) {
  const auto* commit = std::get_if<PropCommit>(&record);
  if (commit == nullptr) return;
  if (commit->filtered > 0) {
    records_filtered_.fetch_add(commit->filtered, std::memory_order_relaxed);
  }
  if (!commit->updates.empty()) {
    updates_received_.fetch_add(commit->updates.size(),
                                std::memory_order_relaxed);
    std::uint64_t bytes = 0;
    for (const storage::Write& w : commit->updates) {
      bytes += w.key.size() + w.value.size();
    }
    update_bytes_received_.fetch_add(bytes, std::memory_order_relaxed);
  }
}

std::size_t Secondary::translation_count() const {
  std::shared_lock lock(translate_mu_);
  return local_to_primary_.size() + pending_translation_.size();
}

std::uint64_t Secondary::SampleLoadEstimate() {
  // ewma += (sample - ewma) / 8, in x1024 fixed point so small loads do not
  // truncate to zero steps. Lock-free CAS loop: concurrent samplers each
  // fold in their own observation; losing a race just retries against the
  // fresher estimate. When the quotient truncates to zero the estimate still
  // steps by one toward the sample, so it converges exactly instead of
  // sticking within 7 counts of the target forever.
  const auto sample =
      static_cast<std::uint64_t>(active_reads_.load(std::memory_order_relaxed))
      << 10;
  std::uint64_t prev = load_ewma_.load(std::memory_order_relaxed);
  std::uint64_t next;
  do {
    const auto delta =
        static_cast<std::int64_t>(sample) - static_cast<std::int64_t>(prev);
    auto step = delta / 8;
    if (step == 0 && delta != 0) step = delta > 0 ? 1 : -1;
    next = static_cast<std::uint64_t>(static_cast<std::int64_t>(prev) + step);
  } while (!load_ewma_.compare_exchange_weak(prev, next,
                                             std::memory_order_relaxed));
  return next;
}

void Secondary::AdvanceSeq(Timestamp primary_commit_ts) {
  {
    std::lock_guard<std::mutex> lock(seq_mu_);
    Timestamp current = applied_seq_.load(std::memory_order_relaxed);
    if (primary_commit_ts > current) {
      applied_seq_.store(primary_commit_ts, std::memory_order_release);
    }
  }
  seq_cv_.notify_all();
}

void Secondary::AdvanceSeqToWatermark(Timestamp local_watermark) {
  // The watermark can jump past commits other applicator threads installed
  // (their FinishExternalCommit returned before ours unblocked the prefix),
  // so seq(DBsec) is driven off the FIFO of allocated refresh commits, not
  // off this thread's own task: pop everything visibility has passed and
  // advance to the newest primary timestamp among them.
  Timestamp newest_primary = kInvalidTimestamp;
  {
    std::lock_guard<std::mutex> lock(visibility_mu_);
    while (!visibility_fifo_.empty() &&
           visibility_fifo_.front().first <= local_watermark) {
      newest_primary = visibility_fifo_.front().second;
      visibility_fifo_.pop_front();
    }
  }
  if (newest_primary != kInvalidTimestamp) AdvanceSeq(newest_primary);
}

void Secondary::RefresherLoop() {
  // Algorithm 3.2. Records are drained in batches — one queue lock
  // round-trip per burst instead of one per record — but still processed
  // strictly in FIFO (= primary log) order, which is what Lemmas 3.1-3.3
  // require of the refresh schedule.
  for (;;) {
    std::vector<PropagationRecord> batch =
        update_queue_.PopBatch(kRefresherBatchSize);
    if (batch.empty()) return;  // closed and drained
    bool shutdown = false;
    for (PropagationRecord& record : batch) {
      CountIncoming(record);
      if (options_.direct_apply) {
        DirectRefreshRecord(record);
      } else {
        LegacyRefreshRecord(record, &shutdown);
        if (shutdown) return;
      }
    }
  }
}

void Secondary::DirectRefreshRecord(PropagationRecord& record) {
  txn::TxnManager* tm = db_->txn_manager();
  if (auto* start = std::get_if<PropStart>(&record)) {
    // Emit the local start record immediately — no pending-queue drain. The
    // refresh transaction's snapshot is defined by its position in the log:
    // it sees exactly the refresh commits whose records precede it, which the
    // visibility watermark will have installed before any timestamp at or
    // past this start is handed to a reader. That is the guarantee the old
    // WaitEmpty stall bought, for free.
    const TxnId local_id = tm->AllocateTxnId();
    tm->ExternalStart(local_id);
    direct_txns_[start->txn_id] = local_id;
  } else if (auto* commit = std::get_if<PropCommit>(&record)) {
    const TxnId local_id = ResolveCommitTxn(commit->txn_id);
    auto writes = std::make_unique<storage::WriteSet>();
    for (const storage::Write& w : commit->updates) {
      if (w.deleted) {
        writes->Delete(w.key);
      } else {
        writes->Put(w.key, w.value);
      }
    }
    {
      // Stage the translation before allocating the local commit timestamp:
      // BeginExternalCommit runs the commit hook synchronously, and the hook
      // must find the staged primary timestamp.
      std::unique_lock lock(translate_mu_);
      pending_translation_[local_id] = commit->commit_ts;
    }
    // Local commit timestamps are allocated here, on the single refresher
    // thread, in primary-commit order — local refresh commit order equals
    // primary commit order by construction (Lemma 3.3), regardless of how
    // the applicator pool interleaves the installations below.
    const Timestamp local_ts = tm->BeginExternalCommit(local_id, *writes);
    {
      std::lock_guard<std::mutex> lock(visibility_mu_);
      visibility_fifo_.emplace_back(local_ts, commit->commit_ts);
    }
    direct_tasks_.Push(
        DirectTask{std::move(writes), local_ts, commit->commit_ts});
  } else if (auto* abort = std::get_if<PropAbort>(&record)) {
    auto abort_it = direct_txns_.find(abort->txn_id);
    if (abort_it != direct_txns_.end()) {
      tm->ExternalAbort(abort_it->second);
      direct_txns_.erase(abort_it);
    }
  }
}

void Secondary::LegacyRefreshRecord(PropagationRecord& record, bool* shutdown) {
  if (auto* start = std::get_if<PropStart>(&record)) {
    // Block until the pending queue is empty so the new refresh
    // transaction's snapshot includes every refresh commit that precedes
    // it in primary order.
    if (!pending_queue_.WaitEmpty()) {
      *shutdown = true;
      return;
    }
    refresh_txns_[start->txn_id] = db_->Begin(/*read_only=*/false);
  } else if (auto* commit = std::get_if<PropCommit>(&record)) {
    std::unique_ptr<txn::Transaction> txn;
    auto it = refresh_txns_.find(commit->txn_id);
    if (it != refresh_txns_.end()) {
      txn = std::move(it->second);
      refresh_txns_.erase(it);
    } else {
      // See the direct-path comment: mid-stream attach without a checkpoint.
      LAZYSI_WARN("secondary: commit without start record, txn="
                  << commit->txn_id);
      if (!pending_queue_.WaitEmpty()) {
        *shutdown = true;
        return;
      }
      txn = db_->Begin(/*read_only=*/false);
    }
    pending_queue_.Append(commit->commit_ts);
    tasks_.Push(ApplyTask{std::move(txn), std::move(commit->updates),
                          commit->commit_ts});
  } else if (auto* abort = std::get_if<PropAbort>(&record)) {
    // Abandon the refresh transaction; Transaction's destructor aborts it.
    refresh_txns_.erase(abort->txn_id);
  }
}

TxnId Secondary::ResolveCommitTxn(TxnId primary_txn_id) {
  txn::TxnManager* tm = db_->txn_manager();
  auto it = direct_txns_.find(primary_txn_id);
  if (it != direct_txns_.end()) {
    const TxnId local_id = it->second;
    direct_txns_.erase(it);
    return local_id;
  }
  // Commit for a transaction whose start record we never saw. This happens
  // only for sinks attached mid-stream without a quiesced checkpoint;
  // recover by starting the refresh transaction now (its updates are value
  // writes, so a later snapshot is safe).
  LAZYSI_WARN("secondary: commit without start record, txn="
              << primary_txn_id);
  const TxnId local_id = tm->AllocateTxnId();
  tm->ExternalStart(local_id);
  return local_id;
}

// ---------------------------------------------------------------------------
// Parallel replay pipeline.
// ---------------------------------------------------------------------------

bool Secondary::ReorderBuffer::Admit(std::uint64_t seq) {
  std::unique_lock<std::mutex> lock(mu_);
  space_cv_.wait(lock, [&] { return closed_ || seq < next_ + kWindow; });
  return !closed_;
}

void Secondary::ReorderBuffer::Put(std::uint64_t seq, DecodedRecord record) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending_.emplace(seq, std::move(record));
  }
  ready_cv_.notify_one();
}

std::vector<Secondary::DecodedRecord> Secondary::ReorderBuffer::PopReady() {
  std::unique_lock<std::mutex> lock(mu_);
  ready_cv_.wait(lock, [&] {
    return closed_ || (!pending_.empty() && pending_.begin()->first == next_);
  });
  std::vector<DecodedRecord> out;
  while (!pending_.empty() && pending_.begin()->first == next_) {
    out.push_back(std::move(pending_.begin()->second));
    pending_.erase(pending_.begin());
    ++next_;
  }
  if (!out.empty()) space_cv_.notify_all();
  return out;
}

void Secondary::ReorderBuffer::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  ready_cv_.notify_all();
  space_cv_.notify_all();
}

void Secondary::ReorderBuffer::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  pending_.clear();
  next_ = 0;
  closed_ = false;
}

void Secondary::ApplyScheduler::Submit(DirectTask task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending_.push_back(std::move(task));
  }
  cv_.notify_all();
}

Secondary::ApplyScheduler::Run Secondary::ApplyScheduler::ClaimRun(
    std::size_t limit) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] {
    if (!pending_.empty()) {
      return (pending_.front().footprint & busy_) == 0;
    }
    return closed_;
  });
  Run run;
  if (pending_.empty()) return run;  // closed and drained
  // Greedy head prefix: stop at the first task whose footprint collides with
  // a concurrently active run. Collision with *this* run's mask is fine —
  // tasks inside one run install sequentially in one timestamp-ordered
  // ApplyBatch pass, so intra-run key overlap is harmless.
  while (run.tasks.size() < limit && !pending_.empty() &&
         (pending_.front().footprint & busy_) == 0) {
    run.mask |= pending_.front().footprint;
    run.tasks.push_back(std::move(pending_.front()));
    pending_.pop_front();
  }
  busy_ |= run.mask;
  return run;
}

void Secondary::ApplyScheduler::CompleteRun(std::uint64_t mask) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    busy_ &= ~mask;
  }
  cv_.notify_all();
}

void Secondary::ApplyScheduler::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

void Secondary::ApplyScheduler::Reopen() {
  std::lock_guard<std::mutex> lock(mu_);
  pending_.clear();
  busy_ = 0;
  closed_ = false;
}

std::size_t Secondary::ApplyScheduler::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_.size();
}

void Secondary::IngestLoop() {
  // Pipeline stage 0: the only consumer of the update queue. Assigns each
  // record a gapless local pipeline sequence number (robust across restarts
  // and resyncs, unlike the propagator-stamped seq, which legitimately gaps
  // when records were broadcast into a closed queue) and fans the record to
  // the decode pool. The reorder-buffer window is the pipeline's
  // backpressure: ingest stalls here when decode or allocation falls behind.
  std::uint64_t next_seq = 0;
  std::uint64_t expected_wire_seq = 0;
  bool have_expected = false;
  for (;;) {
    std::vector<PropagationRecord> batch =
        update_queue_.PopBatch(kRefresherBatchSize);
    if (batch.empty()) return;  // closed and drained
    for (PropagationRecord& record : batch) {
      CountIncoming(record);
      const std::uint64_t wire_seq =
          std::visit([](const auto& r) { return r.seq; }, record);
      if (have_expected && wire_seq != expected_wire_seq) {
        stream_discontinuities_.fetch_add(1, std::memory_order_relaxed);
        LAZYSI_WARN("secondary: propagation stream discontinuity, expected seq "
                    << expected_wire_seq << " got " << wire_seq);
      }
      expected_wire_seq = wire_seq + 1;
      have_expected = true;
      if (!reorder_.Admit(next_seq)) return;
      decode_queue_.Push(DecodeJob{next_seq, std::move(record)});
      ++next_seq;
    }
  }
}

Secondary::DecodedRecord Secondary::DecodeRecord(
    PropagationRecord& record) const {
  DecodedRecord out;
  if (auto* start = std::get_if<PropStart>(&record)) {
    out.kind = DecodedRecord::Kind::kStart;
    out.txn_id = start->txn_id;
    out.primary_ts = start->start_ts;
  } else if (auto* commit = std::get_if<PropCommit>(&record)) {
    out.kind = DecodedRecord::Kind::kCommit;
    out.txn_id = commit->txn_id;
    out.primary_ts = commit->commit_ts;
    out.writes = std::make_unique<storage::WriteSet>();
    for (const storage::Write& w : commit->updates) {
      if (w.deleted) {
        out.writes->Delete(w.key);
      } else {
        out.writes->Put(w.key, w.value);
      }
    }
    out.footprint = db_->store()->ShardFootprint(*out.writes);
  } else if (auto* abort = std::get_if<PropAbort>(&record)) {
    out.kind = DecodedRecord::Kind::kAbort;
    out.txn_id = abort->txn_id;
  }
  return out;
}

void Secondary::DecodeLoop() {
  // Pipeline stage 1: all per-record CPU work — write-set construction and
  // shard-footprint extraction — off the ordered path. Results re-sequence
  // through the reorder buffer; this loop needs no ordering of its own.
  while (auto job = decode_queue_.Pop()) {
    reorder_.Put(job->seq, DecodeRecord(job->record));
  }
}

void Secondary::FlushCommitBatch(std::vector<PendingCommit>* batch) {
  if (batch->empty()) return;
  txn::TxnManager* tm = db_->txn_manager();
  {
    // Stage every translation before allocating the local commit timestamps:
    // BeginExternalCommitBatch runs the commit hook synchronously, and the
    // hook must find the staged primary timestamp.
    std::unique_lock lock(translate_mu_);
    for (const PendingCommit& pc : *batch) {
      pending_translation_[pc.local_id] = pc.primary_ts;
    }
  }
  std::vector<txn::TxnManager::ExternalCommitRequest> requests;
  requests.reserve(batch->size());
  for (const PendingCommit& pc : *batch) {
    requests.push_back({pc.local_id, pc.writes.get()});
  }
  // The tiny ordered section: the whole batch's timestamps come from one
  // clock-mutex hold, in batch (= primary-commit) order.
  const std::vector<Timestamp> allocated = tm->BeginExternalCommitBatch(requests);
  {
    std::lock_guard<std::mutex> lock(visibility_mu_);
    for (std::size_t i = 0; i < batch->size(); ++i) {
      visibility_fifo_.emplace_back(allocated[i], (*batch)[i].primary_ts);
    }
  }
  for (std::size_t i = 0; i < batch->size(); ++i) {
    PendingCommit& pc = (*batch)[i];
    scheduler_.Submit(DirectTask{std::move(pc.writes), allocated[i],
                                 pc.primary_ts, pc.footprint});
  }
  batch->clear();
}

void Secondary::SequencerLoop() {
  // Pipeline stage 2: consumes the reordered stream in pipeline-sequence
  // (= primary log) order and does nothing but bookkeeping and timestamp
  // allocation. Commits batch through BeginExternalCommitBatch; a start or
  // abort first flushes the accumulated batch so the local log's record
  // interleaving exactly mirrors the primary log's (the snapshot of a
  // refresh transaction is defined by its position among emitted commits).
  txn::TxnManager* tm = db_->txn_manager();
  std::vector<PendingCommit> batch;
  batch.reserve(kSequencerBatch);
  for (;;) {
    std::vector<DecodedRecord> ready = reorder_.PopReady();
    if (ready.empty()) {
      FlushCommitBatch(&batch);
      return;  // closed and drained
    }
    for (DecodedRecord& rec : ready) {
      switch (rec.kind) {
        case DecodedRecord::Kind::kStart: {
          FlushCommitBatch(&batch);
          const TxnId local_id = tm->AllocateTxnId();
          tm->ExternalStart(local_id);
          direct_txns_[rec.txn_id] = local_id;
          break;
        }
        case DecodedRecord::Kind::kCommit: {
          const TxnId local_id = ResolveCommitTxn(rec.txn_id);
          batch.push_back(PendingCommit{local_id, std::move(rec.writes),
                                        rec.primary_ts, rec.footprint});
          if (batch.size() >= kSequencerBatch) FlushCommitBatch(&batch);
          break;
        }
        case DecodedRecord::Kind::kAbort: {
          FlushCommitBatch(&batch);
          auto it = direct_txns_.find(rec.txn_id);
          if (it != direct_txns_.end()) {
            tm->ExternalAbort(it->second);
            direct_txns_.erase(it);
          }
          break;
        }
      }
    }
    // Flush at burst end rather than waiting for a full batch: when the
    // stream goes quiet the allocated prefix reaches the applicators (and
    // the watermark) immediately.
    FlushCommitBatch(&batch);
  }
}

void Secondary::ParallelApplicatorLoop() {
  // Pipeline stage 3: Algorithm 3.3 in key-disjoint group-apply form. Each
  // claimed run's shard footprint is exclusive against every other in-flight
  // run, so concurrent ApplyBatch passes never interleave installs on the
  // same key and per-key version order equals timestamp order by
  // construction. Publication stays serialized by the visibility watermark
  // regardless of install interleaving.
  for (;;) {
    ApplyScheduler::Run run = scheduler_.ClaimRun(options_.group_apply_limit);
    if (run.tasks.empty()) return;  // closed and drained
    std::vector<storage::VersionedStore::TimestampedWrites> installs;
    installs.reserve(run.tasks.size());
    for (const DirectTask& task : run.tasks) {
      installs.push_back({task.writes.get(), task.local_commit_ts});
    }
    db_->store()->ApplyBatch(installs);
    // Versions are fully installed: release the run's shard claim before the
    // visibility pass so a same-key successor run can start installing (its
    // timestamps are higher — order per key is preserved).
    scheduler_.CompleteRun(run.mask);
    CountGroupApply(run.tasks.size());
    Timestamp watermark = kInvalidTimestamp;
    for (const DirectTask& task : run.tasks) {
      watermark =
          db_->txn_manager()->FinishExternalCommit(task.local_commit_ts);
    }
    refreshed_count_.fetch_add(run.tasks.size(), std::memory_order_relaxed);
    AdvanceSeqToWatermark(watermark);
  }
}

void Secondary::CountGroupApply(std::size_t batch_size) {
  group_applies_.fetch_add(1, std::memory_order_relaxed);
  group_applied_commits_.fetch_add(batch_size, std::memory_order_relaxed);
  std::uint64_t prev = max_group_apply_.load(std::memory_order_relaxed);
  while (batch_size > prev &&
         !max_group_apply_.compare_exchange_weak(prev, batch_size,
                                                 std::memory_order_relaxed)) {
  }
}

void Secondary::DirectApplicatorLoop() {
  // Algorithm 3.3, group-apply form: drain a run of consecutive refresh
  // commits and install all their writes in one store pass. Tasks arrive in
  // local-commit-timestamp order (single refresher producer), so each batch
  // is an increasing run, as ApplyBatch requires. No ordering wait is needed
  // before installation — the visibility watermark serializes *publication*
  // in timestamp order, so installation itself can proceed in parallel.
  for (;;) {
    std::vector<DirectTask> batch =
        direct_tasks_.PopBatch(options_.group_apply_limit);
    if (batch.empty()) return;  // closed and drained
    std::vector<storage::VersionedStore::TimestampedWrites> installs;
    installs.reserve(batch.size());
    for (const DirectTask& task : batch) {
      installs.push_back({task.writes.get(), task.local_commit_ts});
    }
    db_->store()->ApplyBatch(installs);
    CountGroupApply(batch.size());
    // Mark the whole group installed, then advance seq(DBsec) once: the
    // watermark is monotone, so the last returned value covers everything
    // this batch (and possibly other threads' batches) unblocked —
    // AdvanceSeqToWatermark credits those too.
    Timestamp watermark = kInvalidTimestamp;
    for (const DirectTask& task : batch) {
      watermark = db_->txn_manager()->FinishExternalCommit(task.local_commit_ts);
    }
    refreshed_count_.fetch_add(batch.size(), std::memory_order_relaxed);
    AdvanceSeqToWatermark(watermark);
  }
}

void Secondary::ApplicatorLoop() {
  // Algorithm 3.3, one iteration per task.
  while (auto task = tasks_.Pop()) {
    for (const auto& w : task->updates) {
      Status s = w.deleted ? task->txn->Delete(w.key)
                           : task->txn->Put(w.key, w.value);
      if (!s.ok()) {
        LAZYSI_ERROR("applicator: buffering update failed: " << s);
      }
    }
    // Commit only when our primary commit timestamp reaches the head of the
    // pending queue, so local refresh commit order equals primary commit
    // order (Lemma 3.3).
    if (!pending_queue_.WaitHead(task->commit_ts)) {
      // Shutdown: abandon the refresh transaction.
      task->txn->Abort();
      continue;
    }
    {
      // Stage the translation; the commit hook publishes it under the
      // timestamp mutex when the commit installs its versions.
      std::unique_lock lock(translate_mu_);
      pending_translation_[task->txn->id()] = task->commit_ts;
    }
    Status s = task->txn->Commit();
    if (!s.ok()) {
      // Cannot happen for refresh transactions: concurrent refreshes have
      // disjoint write sets (conflicting primary transactions are never
      // concurrent after FCW at the primary), and the local control is
      // deadlock-free. Surface loudly if the invariant is ever broken.
      LAZYSI_ERROR("applicator: refresh commit failed: " << s);
      std::unique_lock lock(translate_mu_);
      pending_translation_.erase(task->txn->id());
    } else {
      refreshed_count_.fetch_add(1, std::memory_order_relaxed);
      // seq(DBsec) := commit_p(T), then remove from the pending queue
      // (Section 4's ordering: set before delete).
      AdvanceSeq(task->commit_ts);
    }
    pending_queue_.PopHead(task->commit_ts);
  }
}

}  // namespace replication
}  // namespace lazysi
