#include "replication/secondary.h"

#include "common/logging.h"

namespace lazysi {
namespace replication {

Secondary::Secondary(engine::Database* db, SecondaryOptions options)
    : db_(db), options_(options) {
  if (options_.applicator_threads == 0) options_.applicator_threads = 1;
  // Publish the local->primary commit-timestamp translation atomically with
  // version visibility (the hook runs under the engine's timestamp mutex),
  // so any reader whose snapshot includes a refresh commit can translate it.
  db_->SetCommitHook([this](TxnId local_txn, Timestamp local_commit_ts) {
    std::lock_guard<std::mutex> lock(translate_mu_);
    auto it = pending_translation_.find(local_txn);
    if (it != pending_translation_.end()) {
      local_to_primary_[local_commit_ts] = it->second;
      pending_translation_.erase(it);
    }
  });
}

Secondary::~Secondary() { Stop(); }

void Secondary::Start() {
  if (started_) return;
  started_ = true;
  // A restart after Stop() finds every queue closed; reopen them so the new
  // threads actually run instead of exiting immediately while started_
  // claims the site is live. Records broadcast while stopped were dropped by
  // the closed update queue (Section 3.4's failure model) — replication
  // resumes from the next record the propagator pushes.
  update_queue_.Reopen();
  tasks_.Reopen();
  pending_queue_.Reopen();
  refresher_ = std::thread([this] { RefresherLoop(); });
  applicators_.reserve(options_.applicator_threads);
  for (std::size_t i = 0; i < options_.applicator_threads; ++i) {
    applicators_.emplace_back([this] { ApplicatorLoop(); });
  }
}

void Secondary::Stop() {
  if (!started_) return;
  update_queue_.Close();
  refresher_.join();
  tasks_.Close();
  pending_queue_.Close();
  for (auto& t : applicators_) t.join();
  applicators_.clear();
  refresh_txns_.clear();  // aborts leftovers via RAII
  started_ = false;
}

bool Secondary::WaitForSeq(Timestamp seq,
                           std::chrono::milliseconds timeout) const {
  if (applied_seq() >= seq) return true;
  std::unique_lock<std::mutex> lock(seq_mu_);
  return seq_cv_.wait_for(lock, timeout, [&] { return applied_seq() >= seq; });
}

void Secondary::InitializeSeq(Timestamp seq, Timestamp local_install_ts) {
  {
    std::lock_guard<std::mutex> lock(translate_mu_);
    local_to_primary_[local_install_ts] = seq;
  }
  AdvanceSeq(seq);
}

Timestamp Secondary::TranslateLocalToPrimary(Timestamp local_ts) const {
  std::lock_guard<std::mutex> lock(translate_mu_);
  auto it = local_to_primary_.find(local_ts);
  return it == local_to_primary_.end() ? kInvalidTimestamp : it->second;
}

void Secondary::AdvanceSeq(Timestamp primary_commit_ts) {
  {
    std::lock_guard<std::mutex> lock(seq_mu_);
    Timestamp current = applied_seq_.load(std::memory_order_relaxed);
    if (primary_commit_ts > current) {
      applied_seq_.store(primary_commit_ts, std::memory_order_release);
    }
  }
  seq_cv_.notify_all();
}

void Secondary::RefresherLoop() {
  // Algorithm 3.2. Records are drained in batches — one queue lock
  // round-trip per burst instead of one per record — but still processed
  // strictly in FIFO (= primary log) order, which is what Lemmas 3.1-3.3
  // require of the refresh schedule.
  for (;;) {
    std::vector<PropagationRecord> batch =
        update_queue_.PopBatch(kRefresherBatchSize);
    if (batch.empty()) return;  // closed and drained
    for (PropagationRecord& record : batch) {
      if (auto* start = std::get_if<PropStart>(&record)) {
        // Block until the pending queue is empty so the new refresh
        // transaction's snapshot includes every refresh commit that precedes
        // it in primary order.
        if (!pending_queue_.WaitEmpty()) return;  // shutdown
        refresh_txns_[start->txn_id] = db_->Begin(/*read_only=*/false);
      } else if (auto* commit = std::get_if<PropCommit>(&record)) {
        std::unique_ptr<txn::Transaction> txn;
        auto it = refresh_txns_.find(commit->txn_id);
        if (it != refresh_txns_.end()) {
          txn = std::move(it->second);
          refresh_txns_.erase(it);
        } else {
          // Commit for a transaction whose start record we never saw. This
          // happens only for sinks attached mid-stream without a quiesced
          // checkpoint; recover by starting the refresh transaction now (its
          // updates are value writes, so a later snapshot is safe).
          LAZYSI_WARN("secondary: commit without start record, txn="
                      << commit->txn_id);
          if (!pending_queue_.WaitEmpty()) return;
          txn = db_->Begin(/*read_only=*/false);
        }
        pending_queue_.Append(commit->commit_ts);
        tasks_.Push(ApplyTask{std::move(txn), std::move(commit->updates),
                              commit->commit_ts});
      } else if (auto* abort = std::get_if<PropAbort>(&record)) {
        // Abandon the refresh transaction; Transaction's destructor aborts
        // it.
        refresh_txns_.erase(abort->txn_id);
      }
    }
  }
}

void Secondary::ApplicatorLoop() {
  // Algorithm 3.3, one iteration per task.
  while (auto task = tasks_.Pop()) {
    for (const auto& w : task->updates) {
      Status s = w.deleted ? task->txn->Delete(w.key)
                           : task->txn->Put(w.key, w.value);
      if (!s.ok()) {
        LAZYSI_ERROR("applicator: buffering update failed: " << s);
      }
    }
    // Commit only when our primary commit timestamp reaches the head of the
    // pending queue, so local refresh commit order equals primary commit
    // order (Lemma 3.3).
    if (!pending_queue_.WaitHead(task->commit_ts)) {
      // Shutdown: abandon the refresh transaction.
      task->txn->Abort();
      continue;
    }
    {
      // Stage the translation; the commit hook publishes it under the
      // timestamp mutex when the commit installs its versions.
      std::lock_guard<std::mutex> lock(translate_mu_);
      pending_translation_[task->txn->id()] = task->commit_ts;
    }
    Status s = task->txn->Commit();
    if (!s.ok()) {
      // Cannot happen for refresh transactions: concurrent refreshes have
      // disjoint write sets (conflicting primary transactions are never
      // concurrent after FCW at the primary), and the local control is
      // deadlock-free. Surface loudly if the invariant is ever broken.
      LAZYSI_ERROR("applicator: refresh commit failed: " << s);
      std::lock_guard<std::mutex> lock(translate_mu_);
      pending_translation_.erase(task->txn->id());
    } else {
      refreshed_count_.fetch_add(1, std::memory_order_relaxed);
      // seq(DBsec) := commit_p(T), then remove from the pending queue
      // (Section 4's ordering: set before delete).
      AdvanceSeq(task->commit_ts);
    }
    pending_queue_.PopHead(task->commit_ts);
  }
}

}  // namespace replication
}  // namespace lazysi
