#ifndef LAZYSI_WAL_LOGICAL_LOG_H_
#define LAZYSI_WAL_LOGICAL_LOG_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "wal/log_record.h"

namespace lazysi {
namespace wal {

/// Append-only logical log of one site. The primary's transaction manager
/// appends under its timestamp mutex, so the log order of start and commit
/// records equals timestamp order — the property Section 3 assumes ("start
/// and commit timestamps are consistent with the actual order of start and
/// commit operations at the site").
///
/// The propagator tails the log through a LogCursor (a "log sniffer" in the
/// paper's terms, Section 5: it does not go through the concurrency control).
/// LSNs are *absolute*: they keep counting across checkpoint truncation and
/// restarts. `base_lsn()` is the oldest retained LSN; At/WaitAt below it
/// return nullopt (the record was truncated away).
class LogicalLog {
 public:
  /// Appends a record; wakes blocked cursors. Returns the record's log
  /// sequence number (LSN, 0-based, absolute).
  std::size_t Append(LogRecord record);

  /// One past the last appended LSN (absolute), i.e. the next LSN.
  std::size_t Size() const;

  /// Oldest retained LSN (0 unless the log was truncated or restored).
  std::size_t base_lsn() const;

  /// Re-bases an *empty* log so the next append gets LSN `base` (recovery:
  /// the on-disk suffix starts there). No-op if records were ever appended.
  void ResetBase(std::size_t base);

  /// Drops in-memory records with LSN < `lsn` (clamped to [base, Size()]).
  /// Absolute LSNs are unaffected; reads below the new base yield nullopt.
  void TruncateBelow(std::size_t lsn);

  /// Returns the record at `lsn` if it exists and is still retained.
  std::optional<LogRecord> At(std::size_t lsn) const;

  /// Blocks until a record with LSN >= `lsn` exists or the log is closed or
  /// `timeout` elapses. Returns the record, or nullopt on close/timeout.
  std::optional<LogRecord> WaitAt(
      std::size_t lsn,
      std::chrono::milliseconds timeout = std::chrono::milliseconds(100)) const;

  /// Closes the log (site shutdown); blocked readers wake with nullopt.
  void Close();
  bool closed() const;

  /// Serializes records [from, Size()) to a byte string (for checkpointing
  /// and for shipping a recovery delta, Section 3.4). The range is snapshot
  /// under the lock and encoded outside it, so a large encode never stalls
  /// Append or the propagator's cursors.
  std::string EncodeFrom(std::size_t from) const;

  /// Parses a byte string produced by EncodeFrom.
  static Result<std::vector<LogRecord>> DecodeAll(const std::string& data);

 private:
  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  std::deque<LogRecord> records_;
  std::size_t base_lsn_ = 0;  // absolute LSN of records_.front()
  bool closed_ = false;
};

}  // namespace wal
}  // namespace lazysi

#endif  // LAZYSI_WAL_LOGICAL_LOG_H_
