#ifndef LAZYSI_WAL_LOGICAL_LOG_H_
#define LAZYSI_WAL_LOGICAL_LOG_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "wal/log_record.h"

namespace lazysi {
namespace wal {

/// Append-only logical log of one site. The primary's transaction manager
/// appends under its timestamp mutex, so the log order of start and commit
/// records equals timestamp order — the property Section 3 assumes ("start
/// and commit timestamps are consistent with the actual order of start and
/// commit operations at the site").
///
/// The propagator tails the log through a LogCursor (a "log sniffer" in the
/// paper's terms, Section 5: it does not go through the concurrency control).
class LogicalLog {
 public:
  /// Appends a record; wakes blocked cursors. Returns the record's log
  /// sequence number (LSN, 0-based).
  std::size_t Append(LogRecord record);

  /// Number of records appended so far.
  std::size_t Size() const;

  /// Returns the record at `lsn` if it exists.
  std::optional<LogRecord> At(std::size_t lsn) const;

  /// Blocks until a record with LSN >= `lsn` exists or the log is closed or
  /// `timeout` elapses. Returns the record, or nullopt on close/timeout.
  std::optional<LogRecord> WaitAt(
      std::size_t lsn,
      std::chrono::milliseconds timeout = std::chrono::milliseconds(100)) const;

  /// Closes the log (site shutdown); blocked readers wake with nullopt.
  void Close();
  bool closed() const;

  /// Serializes records [from, Size()) to a byte string (for checkpointing
  /// and for shipping a recovery delta, Section 3.4).
  std::string EncodeFrom(std::size_t from) const;

  /// Parses a byte string produced by EncodeFrom.
  static Result<std::vector<LogRecord>> DecodeAll(const std::string& data);

 private:
  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  std::deque<LogRecord> records_;
  bool closed_ = false;
};

}  // namespace wal
}  // namespace lazysi

#endif  // LAZYSI_WAL_LOGICAL_LOG_H_
