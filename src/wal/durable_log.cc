#include "wal/durable_log.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/crc32.h"
#include "common/durable_file.h"
#include "common/logging.h"

namespace lazysi {
namespace wal {

namespace {

constexpr char kSegmentMagic[] = "LZSIWAL1";
constexpr std::size_t kMagicSize = 8;
constexpr std::size_t kHeaderSize = kMagicSize + 8 + 8;
constexpr std::size_t kFrameHeaderSize = 8;  // LE32 len + LE32 crc

void AppendLE32(std::string* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

std::uint32_t ReadLE32(const std::string& data, std::size_t offset) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(
             static_cast<unsigned char>(data[offset + i]))
         << (8 * i);
  }
  return v;
}

void AppendLE64(std::string* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

std::uint64_t ReadLE64(const std::string& data, std::size_t offset) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(
             static_cast<unsigned char>(data[offset + i]))
         << (8 * i);
  }
  return v;
}

Status WriteAll(int fd, const char* data, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("log write: ") +
                              std::strerror(errno));
    }
    done += static_cast<std::size_t>(n);
  }
  return Status::OK();
}

std::size_t ApproxEncodedSize(const LogRecord& r) {
  return kFrameHeaderSize + 24 + r.key.size() + r.value.size();
}

bool IsUpdate(const LogRecord& r) {
  return r.type == LogRecordType::kUpdate;
}

}  // namespace

bool ParseFsyncMode(const std::string& name, DurableLog::FsyncMode* mode) {
  if (name == "always") {
    *mode = DurableLog::FsyncMode::kAlways;
  } else if (name == "group") {
    *mode = DurableLog::FsyncMode::kGroup;
  } else if (name == "never") {
    *mode = DurableLog::FsyncMode::kNever;
  } else {
    return false;
  }
  return true;
}

std::string SegmentName(std::uint64_t start_lsn) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%020llu.seg",
                static_cast<unsigned long long>(start_lsn));
  return buf;
}

bool ParseSegmentName(const std::string& name, std::uint64_t* start_lsn) {
  if (name.size() < 5 || name.substr(name.size() - 4) != ".seg") return false;
  std::uint64_t lsn = 0;
  for (std::size_t i = 0; i + 4 < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    lsn = lsn * 10 + static_cast<std::uint64_t>(name[i] - '0');
  }
  *start_lsn = lsn;
  return true;
}

Result<std::unique_ptr<DurableLog>> DurableLog::Open(const Options& opts,
                                                     Recovered* recovered) {
  *recovered = Recovered{};
  LAZYSI_RETURN_NOT_OK(EnsureDirectory(opts.dir));

  // Enumerate segments, oldest first.
  std::vector<std::pair<std::uint64_t, std::string>> segments;
  {
    DIR* d = ::opendir(opts.dir.c_str());
    if (d == nullptr) {
      return Status::Internal("opendir " + opts.dir + ": " +
                              std::strerror(errno));
    }
    struct dirent* ent;
    while ((ent = ::readdir(d)) != nullptr) {
      std::uint64_t start = 0;
      if (ParseSegmentName(ent->d_name, &start)) {
        segments.emplace_back(start, opts.dir + "/" + ent->d_name);
      }
    }
    ::closedir(d);
  }
  std::sort(segments.begin(), segments.end());

  auto log = std::unique_ptr<DurableLog>(new DurableLog(opts));
  const bool do_sync = opts.fsync_mode != FsyncMode::kNever;

  // A crash can leave the newest segment with a torn header (created but
  // never fully written). It then holds no records at all: the log ends at
  // the previous segment, so drop the stub before picking the active one.
  while (!segments.empty()) {
    std::string contents;
    Status read = ReadWholeFile(segments.back().second, &contents);
    if (!read.ok()) return read;
    if (contents.size() >= kHeaderSize &&
        std::memcmp(contents.data(), kSegmentMagic, kMagicSize) == 0) {
      break;
    }
    LAZYSI_WARN("durable_log: dropping torn segment stub "
                << segments.back().second);
    ::unlink(segments.back().second.c_str());
    recovered->tail_truncated = true;
    segments.pop_back();
  }

  std::uint64_t expected_lsn = 0;
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const bool last = (i + 1 == segments.size());
    const std::string& path = segments[i].second;
    std::string contents;
    LAZYSI_RETURN_NOT_OK(ReadWholeFile(path, &contents));
    if (contents.size() < kHeaderSize ||
        std::memcmp(contents.data(), kSegmentMagic, kMagicSize) != 0) {
      return Status::InvalidArgument("bad segment header: " + path);
    }
    const std::uint64_t start_lsn = ReadLE64(contents, kMagicSize);
    const std::uint64_t start_seq = ReadLE64(contents, kMagicSize + 8);
    if (start_lsn != segments[i].first) {
      return Status::InvalidArgument("segment name/header mismatch: " + path);
    }
    if (i == 0) {
      recovered->base_lsn = start_lsn;
      recovered->base_record_seq = start_seq;
      expected_lsn = start_lsn;
    }
    if (start_lsn != expected_lsn) {
      return Status::InvalidArgument(
          "segment gap: " + path + " starts at " + std::to_string(start_lsn) +
          ", expected " + std::to_string(expected_lsn));
    }

    std::size_t offset = kHeaderSize;
    std::size_t good_end = offset;
    while (offset < contents.size()) {
      Status frame_status = Status::OK();
      if (offset + kFrameHeaderSize > contents.size()) {
        frame_status = Status::InvalidArgument("short frame header");
      } else {
        const std::uint32_t len = ReadLE32(contents, offset);
        const std::uint32_t want_crc = ReadLE32(contents, offset + 4);
        if (offset + kFrameHeaderSize + len > contents.size()) {
          frame_status = Status::InvalidArgument("short frame payload");
        } else {
          const std::string payload =
              contents.substr(offset + kFrameHeaderSize, len);
          if (Crc32c(payload) != want_crc) {
            frame_status = Status::InvalidArgument("frame crc mismatch");
          } else {
            std::size_t rec_off = 0;
            auto rec = LogRecord::Decode(payload, &rec_off);
            if (!rec.ok() || rec_off != payload.size()) {
              frame_status = Status::InvalidArgument("frame decode failure");
            } else {
              recovered->records.push_back(std::move(rec).value());
              offset += kFrameHeaderSize + len;
              good_end = offset;
              continue;
            }
          }
        }
      }
      // Torn or corrupt frame.
      if (!last) {
        return Status::InvalidArgument("torn record in non-final segment " +
                                       path + ": " + frame_status.message());
      }
      LAZYSI_WARN("durable_log: truncating torn tail of "
                  << path << " at offset " << good_end << " ("
                  << frame_status.message() << ")");
      const int fd = ::open(path.c_str(), O_RDWR);
      if (fd < 0) {
        return Status::Internal("open " + path + ": " + std::strerror(errno));
      }
      if (::ftruncate(fd, static_cast<off_t>(good_end)) != 0) {
        const std::string err = std::strerror(errno);
        ::close(fd);
        return Status::Internal("ftruncate " + path + ": " + err);
      }
      if (do_sync) ::fsync(fd);
      ::close(fd);
      contents.resize(good_end);
      recovered->tail_truncated = true;
      break;
    }
    expected_lsn = recovered->base_lsn + recovered->records.size();
    if (last) {
      log->seg_start_lsn_ = start_lsn;
      log->seg_bytes_ = contents.size();
    }
  }

  log->base_lsn_ = recovered->base_lsn;
  log->next_lsn_ = recovered->base_lsn + recovered->records.size();
  log->flushed_end_ = log->next_lsn_;
  log->records_seen_ = recovered->base_record_seq;
  for (const auto& r : recovered->records) {
    if (!IsUpdate(r)) ++log->records_seen_;
    if (r.type == LogRecordType::kStart) {
      ++log->open_txns_;
    } else if (r.type == LogRecordType::kCommit ||
               r.type == LogRecordType::kAbort) {
      --log->open_txns_;
    }
  }

  if (segments.empty()) {
    // Fresh log: create the first segment eagerly so the active fd always
    // exists.
    LAZYSI_RETURN_NOT_OK(log->RotateLocked(0));
  } else {
    const std::string path = opts.dir + "/" + SegmentName(log->seg_start_lsn_);
    log->seg_fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
    if (log->seg_fd_ < 0) {
      return Status::Internal("open " + path + ": " + std::strerror(errno));
    }
  }

  if (opts.fsync_mode != FsyncMode::kAlways) {
    log->writer_ = std::thread(&DurableLog::WriterLoop, log.get());
  }
  return log;
}

DurableLog::~DurableLog() { Close(); }

void DurableLog::Append(std::uint64_t lsn, const LogRecord& record) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending_.push_back(
        PendingRecord{lsn, record, std::chrono::steady_clock::now()});
    next_lsn_ = lsn + 1;
  }
  cv_.notify_all();
}

Status DurableLog::RotateLocked(std::uint64_t next_lsn) {
  const bool do_sync = opts_.fsync_mode != FsyncMode::kNever;
  if (seg_fd_ >= 0) {
    if (do_sync) {
      ::fdatasync(seg_fd_);
      c_fsyncs_.fetch_add(1, std::memory_order_relaxed);
    }
    ::close(seg_fd_);
    seg_fd_ = -1;
  }
  const std::string path = opts_.dir + "/" + SegmentName(next_lsn);
  seg_fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                   0644);
  if (seg_fd_ < 0) {
    return Status::Internal("create segment " + path + ": " +
                            std::strerror(errno));
  }
  std::string header(kSegmentMagic, kMagicSize);
  AppendLE64(&header, next_lsn);
  AppendLE64(&header, records_seen_);
  LAZYSI_RETURN_NOT_OK(WriteAll(seg_fd_, header.data(), header.size()));
  if (do_sync) {
    // Make the segment's directory entry durable before any frame lands in
    // it; otherwise recovery could find frames in a file that "does not
    // exist" yet.
    LAZYSI_RETURN_NOT_OK(FsyncDirectory(opts_.dir));
  }
  seg_start_lsn_ = next_lsn;
  seg_bytes_ = kHeaderSize;
  c_segments_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status DurableLog::WriteBatch(const std::vector<PendingRecord>& batch) {
  if (batch.empty()) return Status::OK();
  std::string buf;
  for (const auto& p : batch) {
    // Rotate only at quiesced boundaries (no transaction spans the cut), so
    // every segment header is a valid replay base and sync point.
    if (seg_bytes_ + buf.size() >= opts_.segment_target_bytes &&
        open_txns_ == 0) {
      LAZYSI_RETURN_NOT_OK(WriteAll(seg_fd_, buf.data(), buf.size()));
      seg_bytes_ += buf.size();
      buf.clear();
      LAZYSI_RETURN_NOT_OK(RotateLocked(p.lsn));
    }
    std::string payload;
    p.record.EncodeTo(&payload);
    AppendLE32(&buf, static_cast<std::uint32_t>(payload.size()));
    AppendCrc32(&buf, Crc32c(payload));
    buf += payload;
    if (p.record.type == LogRecordType::kStart) {
      ++open_txns_;
    } else if (p.record.type == LogRecordType::kCommit ||
               p.record.type == LogRecordType::kAbort) {
      --open_txns_;
    }
    if (!IsUpdate(p.record)) ++records_seen_;
  }
  LAZYSI_RETURN_NOT_OK(WriteAll(seg_fd_, buf.data(), buf.size()));
  seg_bytes_ += buf.size();
  Fire(CrashPoint::kAfterWrite);
  if (opts_.fsync_mode != FsyncMode::kNever) {
    if (::fdatasync(seg_fd_) != 0) {
      return Status::Internal(std::string("fdatasync: ") +
                              std::strerror(errno));
    }
    c_fsyncs_.fetch_add(1, std::memory_order_relaxed);
    Fire(CrashPoint::kAfterFsync);
  }
  c_records_flushed_.fetch_add(batch.size(), std::memory_order_relaxed);
  c_flush_batches_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t prev = c_max_group_.load(std::memory_order_relaxed);
  while (batch.size() > prev &&
         !c_max_group_.compare_exchange_weak(prev, batch.size(),
                                             std::memory_order_relaxed)) {
  }
  return Status::OK();
}

void DurableLog::WriterLoop() {
  for (;;) {
    std::vector<PendingRecord> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stop_ || !pending_.empty(); });
      if (pending_.empty()) {
        if (stop_) return;
        continue;
      }
      if (opts_.fsync_mode == FsyncMode::kGroup &&
          opts_.group_flush_interval.count() > 0) {
        // Linger briefly after the first queued record so concurrent
        // committers can pile into the same fsync. An explicit Flush()
        // target, the byte cap, or shutdown cuts the linger short.
        const auto deadline =
            pending_.front().enqueued + opts_.group_flush_interval;
        std::size_t bytes = 0;
        cv_.wait_until(lock, deadline, [&] {
          if (stop_ || flush_target_ > flushed_end_) return true;
          bytes = 0;
          for (const auto& p : pending_) {
            bytes += ApproxEncodedSize(p.record);
            if (bytes >= opts_.max_group_bytes) return true;
          }
          return false;
        });
      }
      std::size_t bytes = 0;
      while (!pending_.empty()) {
        bytes += ApproxEncodedSize(pending_.front().record);
        batch.push_back(std::move(pending_.front()));
        pending_.pop_front();
        if (bytes >= opts_.max_group_bytes) break;
      }
    }
    Status s = WriteBatch(batch);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!s.ok()) {
        if (io_status_.ok()) io_status_ = s;
        LAZYSI_ERROR("durable_log: writer error: " << s.ToString());
      } else if (!batch.empty()) {
        flushed_end_ = batch.back().lsn + 1;
      }
    }
    flush_cv_.notify_all();
  }
}

Status DurableLog::InlineFlush(std::uint64_t end_lsn) {
  std::lock_guard<std::mutex> io(io_mu_);
  std::vector<PendingRecord> batch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!io_status_.ok()) return io_status_;
    if (flushed_end_ >= end_lsn) return Status::OK();
    while (!pending_.empty() && pending_.front().lsn < end_lsn) {
      batch.push_back(std::move(pending_.front()));
      pending_.pop_front();
    }
  }
  Status s = WriteBatch(batch);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!s.ok()) {
      if (io_status_.ok()) io_status_ = s;
      return s;
    }
    flushed_end_ = std::max(flushed_end_, end_lsn);
  }
  flush_cv_.notify_all();
  return Status::OK();
}

Status DurableLog::WaitDurable(std::uint64_t end_lsn) {
  switch (opts_.fsync_mode) {
    case FsyncMode::kNever:
      return Status::OK();
    case FsyncMode::kAlways:
      return InlineFlush(end_lsn);
    case FsyncMode::kGroup:
      break;
  }
  std::unique_lock<std::mutex> lock(mu_);
  flush_cv_.wait(lock, [&] {
    return flushed_end_ >= end_lsn || !io_status_.ok() || stop_;
  });
  if (flushed_end_ >= end_lsn) return Status::OK();
  if (!io_status_.ok()) return io_status_;
  return Status::Unavailable("durable log closed");
}

Status DurableLog::Flush(std::uint64_t end_lsn) {
  if (opts_.fsync_mode == FsyncMode::kAlways) return InlineFlush(end_lsn);
  {
    std::lock_guard<std::mutex> lock(mu_);
    end_lsn = std::min(end_lsn, next_lsn_);
    flush_target_ = std::max(flush_target_, end_lsn);
  }
  cv_.notify_all();
  std::unique_lock<std::mutex> lock(mu_);
  flush_cv_.wait(lock, [&] {
    return flushed_end_ >= end_lsn || !io_status_.ok() || stop_;
  });
  if (flushed_end_ >= end_lsn) return Status::OK();
  if (!io_status_.ok()) return io_status_;
  return Status::Unavailable("durable log closed");
}

Result<std::uint64_t> DurableLog::TruncateBelow(std::uint64_t lsn) {
  std::lock_guard<std::mutex> io(trunc_mu_);
  std::vector<std::pair<std::uint64_t, std::string>> segments;
  {
    DIR* d = ::opendir(opts_.dir.c_str());
    if (d == nullptr) {
      return Status::Internal("opendir " + opts_.dir + ": " +
                              std::strerror(errno));
    }
    struct dirent* ent;
    while ((ent = ::readdir(d)) != nullptr) {
      std::uint64_t start = 0;
      if (ParseSegmentName(ent->d_name, &start)) {
        segments.emplace_back(start, opts_.dir + "/" + ent->d_name);
      }
    }
    ::closedir(d);
  }
  std::sort(segments.begin(), segments.end());
  bool deleted = false;
  for (std::size_t i = 0; i + 1 < segments.size(); ++i) {
    // A segment is disposable when its successor starts at or below the
    // floor: every record in it is then < lsn.
    if (segments[i + 1].first > lsn) break;
    struct stat st;
    if (::stat(segments[i].second.c_str(), &st) == 0) {
      c_bytes_truncated_.fetch_add(static_cast<std::uint64_t>(st.st_size),
                                   std::memory_order_relaxed);
    }
    ::unlink(segments[i].second.c_str());
    segments[i].first = 0;
    segments[i].second.clear();
    deleted = true;
  }
  std::uint64_t new_base = base_lsn();
  for (const auto& seg : segments) {
    if (!seg.second.empty()) {
      new_base = seg.first;
      break;
    }
  }
  if (deleted && opts_.fsync_mode != FsyncMode::kNever) {
    LAZYSI_RETURN_NOT_OK(FsyncDirectory(opts_.dir));
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    base_lsn_ = new_base;
  }
  return new_base;
}

void DurableLog::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
  }
  // Flush whatever is queued, then stop the writer.
  std::uint64_t end;
  {
    std::lock_guard<std::mutex> lock(mu_);
    end = next_lsn_;
  }
  (void)Flush(end);  // best effort; io_status_ already records failures
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  flush_cv_.notify_all();
  if (writer_.joinable()) writer_.join();
  if (seg_fd_ >= 0) {
    if (opts_.fsync_mode != FsyncMode::kNever) ::fdatasync(seg_fd_);
    ::close(seg_fd_);
    seg_fd_ = -1;
  }
}

std::uint64_t DurableLog::base_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return base_lsn_;
}

std::uint64_t DurableLog::flushed_end() const {
  std::lock_guard<std::mutex> lock(mu_);
  return flushed_end_;
}

std::uint64_t DurableLog::next_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_lsn_;
}

DurableLog::Counters DurableLog::counters() const {
  Counters c;
  c.fsyncs = c_fsyncs_.load(std::memory_order_relaxed);
  c.records_flushed = c_records_flushed_.load(std::memory_order_relaxed);
  c.flush_batches = c_flush_batches_.load(std::memory_order_relaxed);
  c.max_group_size = c_max_group_.load(std::memory_order_relaxed);
  c.bytes_truncated = c_bytes_truncated_.load(std::memory_order_relaxed);
  c.segments_created = c_segments_.load(std::memory_order_relaxed);
  return c;
}

}  // namespace wal
}  // namespace lazysi
