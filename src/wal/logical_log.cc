#include "wal/logical_log.h"

namespace lazysi {
namespace wal {

std::size_t LogicalLog::Append(LogRecord record) {
  std::size_t lsn;
  {
    std::lock_guard<std::mutex> lock(mu_);
    lsn = records_.size();
    records_.push_back(std::move(record));
  }
  cv_.notify_all();
  return lsn;
}

std::size_t LogicalLog::Size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

std::optional<LogRecord> LogicalLog::At(std::size_t lsn) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (lsn >= records_.size()) return std::nullopt;
  return records_[lsn];
}

std::optional<LogRecord> LogicalLog::WaitAt(
    std::size_t lsn, std::chrono::milliseconds timeout) const {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait_for(lock, timeout,
               [&] { return lsn < records_.size() || closed_; });
  if (lsn < records_.size()) return records_[lsn];
  return std::nullopt;
}

void LogicalLog::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool LogicalLog::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

std::string LogicalLog::EncodeFrom(std::size_t from) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (std::size_t i = from; i < records_.size(); ++i) {
    records_[i].EncodeTo(&out);
  }
  return out;
}

Result<std::vector<LogRecord>> LogicalLog::DecodeAll(const std::string& data) {
  std::vector<LogRecord> out;
  std::size_t offset = 0;
  while (offset < data.size()) {
    auto rec = LogRecord::Decode(data, &offset);
    if (!rec.ok()) return rec.status();
    out.push_back(std::move(rec).value());
  }
  return out;
}

}  // namespace wal
}  // namespace lazysi
