#include "wal/logical_log.h"

namespace lazysi {
namespace wal {

std::size_t LogicalLog::Append(LogRecord record) {
  std::size_t lsn;
  {
    std::lock_guard<std::mutex> lock(mu_);
    lsn = base_lsn_ + records_.size();
    records_.push_back(std::move(record));
  }
  cv_.notify_all();
  return lsn;
}

std::size_t LogicalLog::Size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return base_lsn_ + records_.size();
}

std::size_t LogicalLog::base_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return base_lsn_;
}

void LogicalLog::ResetBase(std::size_t base) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!records_.empty() || base_lsn_ != 0) return;
  base_lsn_ = base;
}

void LogicalLog::TruncateBelow(std::size_t lsn) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t end = base_lsn_ + records_.size();
  if (lsn > end) lsn = end;
  while (base_lsn_ < lsn) {
    records_.pop_front();
    ++base_lsn_;
  }
}

std::optional<LogRecord> LogicalLog::At(std::size_t lsn) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (lsn < base_lsn_ || lsn - base_lsn_ >= records_.size()) {
    return std::nullopt;
  }
  return records_[lsn - base_lsn_];
}

std::optional<LogRecord> LogicalLog::WaitAt(
    std::size_t lsn, std::chrono::milliseconds timeout) const {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait_for(lock, timeout, [&] {
    return lsn < base_lsn_ + records_.size() || closed_;
  });
  if (lsn < base_lsn_ || lsn - base_lsn_ >= records_.size()) {
    return std::nullopt;
  }
  return records_[lsn - base_lsn_];
}

void LogicalLog::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool LogicalLog::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

std::string LogicalLog::EncodeFrom(std::size_t from) const {
  // Snapshot the range under the lock, encode outside it: serialization is
  // O(total bytes) and must not stall Append or blocked cursors.
  std::vector<LogRecord> snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (from < base_lsn_) from = base_lsn_;
    if (from > base_lsn_ + records_.size()) from = base_lsn_ + records_.size();
    snapshot.assign(records_.begin() +
                        static_cast<std::ptrdiff_t>(from - base_lsn_),
                    records_.end());
  }
  std::string out;
  for (const auto& record : snapshot) {
    record.EncodeTo(&out);
  }
  return out;
}

Result<std::vector<LogRecord>> LogicalLog::DecodeAll(const std::string& data) {
  std::vector<LogRecord> out;
  std::size_t offset = 0;
  while (offset < data.size()) {
    auto rec = LogRecord::Decode(data, &offset);
    if (!rec.ok()) return rec.status();
    out.push_back(std::move(rec).value());
  }
  return out;
}

}  // namespace wal
}  // namespace lazysi
