#ifndef LAZYSI_WAL_LOG_RECORD_H_
#define LAZYSI_WAL_LOG_RECORD_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/timestamp.h"

namespace lazysi {
namespace wal {

/// Kinds of logical log entries, exactly the four Algorithm 3.1 dispatches
/// on: start_p(T), T's update, commit_p(T), abort_p(T).
enum class LogRecordType : std::uint8_t {
  kStart = 1,
  kUpdate = 2,
  kCommit = 3,
  kAbort = 4,
};

/// One logical log entry. The log is SQL-statement-level ("logical") rather
/// than page-level, as the paper assumes (Section 3: "a logical log
/// containing update records is available", citing Oracle's capability).
///
/// Field usage by type:
///  - kStart:  txn_id, timestamp = start_p(T)
///  - kUpdate: txn_id, key, value, deleted
///  - kCommit: txn_id, timestamp = commit_p(T)
///  - kAbort:  txn_id
struct LogRecord {
  LogRecordType type = LogRecordType::kStart;
  TxnId txn_id = kInvalidTxnId;
  Timestamp timestamp = kInvalidTimestamp;
  std::string key;
  std::string value;
  bool deleted = false;

  static LogRecord Start(TxnId txn, Timestamp start_ts) {
    LogRecord r;
    r.type = LogRecordType::kStart;
    r.txn_id = txn;
    r.timestamp = start_ts;
    return r;
  }
  static LogRecord Update(TxnId txn, std::string key, std::string value,
                          bool deleted) {
    LogRecord r;
    r.type = LogRecordType::kUpdate;
    r.txn_id = txn;
    r.key = std::move(key);
    r.value = std::move(value);
    r.deleted = deleted;
    return r;
  }
  static LogRecord Commit(TxnId txn, Timestamp commit_ts) {
    LogRecord r;
    r.type = LogRecordType::kCommit;
    r.txn_id = txn;
    r.timestamp = commit_ts;
    return r;
  }
  static LogRecord Abort(TxnId txn) {
    LogRecord r;
    r.type = LogRecordType::kAbort;
    r.txn_id = txn;
    return r;
  }

  bool operator==(const LogRecord& other) const = default;

  /// Appends a length-delimited binary encoding to `out`. The format is
  /// self-describing enough for crash-recovery style replay and round-trips
  /// through Decode.
  void EncodeTo(std::string* out) const;

  /// Decodes one record from `data` starting at *offset; advances *offset.
  static Result<LogRecord> Decode(const std::string& data,
                                  std::size_t* offset);

  std::string ToString() const;
};

}  // namespace wal
}  // namespace lazysi

#endif  // LAZYSI_WAL_LOG_RECORD_H_
