#include "wal/log_file.h"

#include <cstdio>
#include <cstring>

#include "common/durable_file.h"
#include "common/hash.h"

namespace lazysi {
namespace wal {

namespace {

void AppendLE64(std::string* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

std::uint64_t ReadLE64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  }
  return v;
}

Result<std::string> ReadWholeFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  std::string contents;
  char buffer[1 << 16];
  std::size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    contents.append(buffer, n);
  }
  std::fclose(f);
  return contents;
}

}  // namespace

constexpr char LogFile::kMagic[8];

Status LogFile::Write(const LogicalLog& log, const std::string& path,
                      std::size_t from_lsn) {
  const std::string payload = log.EncodeFrom(from_lsn);
  std::string file;
  file.append(kMagic, sizeof(kMagic));
  file.append(payload);
  AppendLE64(&file, Fnv1a64(payload));
  // Durable atomic replace: fsync of the temp file, rename, directory fsync.
  return WriteFileDurably(path, file);
}

Result<std::vector<LogRecord>> LogFile::Read(const std::string& path) {
  auto contents = ReadWholeFile(path);
  if (!contents.ok()) return contents.status();
  const std::string& file = *contents;
  if (file.size() < sizeof(kMagic) + 8 ||
      std::memcmp(file.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("'" + path + "' is not a lazysi log file");
  }
  const std::string payload =
      file.substr(sizeof(kMagic), file.size() - sizeof(kMagic) - 8);
  const std::uint64_t stored =
      ReadLE64(file.data() + file.size() - 8);
  if (Fnv1a64(payload) != stored) {
    return Status::InvalidArgument("'" + path + "' failed checksum");
  }
  return LogicalLog::DecodeAll(payload);
}

}  // namespace wal
}  // namespace lazysi
