#ifndef LAZYSI_WAL_LOG_FILE_H_
#define LAZYSI_WAL_LOG_FILE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "wal/logical_log.h"

namespace lazysi {
namespace wal {

/// Durable serialization of a logical log segment.
///
/// File format:
///   8 bytes  magic "LZSILOG1"
///   payload  concatenated LogRecord encodings (self-delimiting)
///   8 bytes  FNV-1a 64 checksum of the payload, little-endian
///
/// Files are written to a temporary name and renamed into place, so readers
/// never observe a half-written file. Together with checkpoint files this
/// gives a site a full restart story: install the checkpoint, then replay
/// the log suffix (engine/recovery.h).
class LogFile {
 public:
  /// Serializes records [from_lsn, log.Size()) of `log` to `path`.
  static Status Write(const LogicalLog& log, const std::string& path,
                      std::size_t from_lsn = 0);

  /// Reads and validates a log file; returns the records in order.
  /// InvalidArgument on bad magic, truncation or checksum mismatch.
  static Result<std::vector<LogRecord>> Read(const std::string& path);

 private:
  static constexpr char kMagic[8] = {'L', 'Z', 'S', 'I', 'L', 'O', 'G', '1'};
};

}  // namespace wal
}  // namespace lazysi

#endif  // LAZYSI_WAL_LOG_FILE_H_
