#ifndef LAZYSI_WAL_DURABLE_LOG_H_
#define LAZYSI_WAL_DURABLE_LOG_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "wal/log_record.h"

namespace lazysi {
namespace wal {

/// Segmented on-disk image of the primary's logical log with group commit.
///
/// Layout: `<dir>/<start_lsn>.seg`, each segment being
///
///   "LZSIWAL1" | LE64 start_lsn | LE64 start_record_seq   (header, 24 bytes)
///   [ LE32 payload_len | LE32 crc32c(payload) | payload ]* (frames)
///
/// where a payload is one LogRecord::EncodeTo encoding. `start_record_seq`
/// is the propagation-stream sequence number at the segment boundary (the
/// count of non-update records below it), so a restarted propagator can be
/// re-seeded straight from the oldest segment header. Segments rotate only
/// at *quiesced* record boundaries (no transaction spans the cut), so every
/// segment start is a valid replay base.
///
/// Appends are queued in memory; durability is governed by `fsync_mode`:
///  - kGroup:  a log-writer thread batches everything queued into one
///             write+fdatasync and advances the flushed watermark; commits
///             wait on the watermark, so N concurrent commits share a fsync.
///  - kAlways: no writer thread; each WaitDurable call flushes and fsyncs
///             the queued prefix up to its own LSN inline (the classic
///             per-commit-fsync baseline, serialized).
///  - kNever:  the writer thread writes batches but never fsyncs, and
///             WaitDurable returns immediately (durability off; the bench
///             baseline for "what does the queueing itself cost").
///
/// On Open, a torn tail in the final segment (crash mid-write) is truncated
/// away; a torn record in any earlier segment is corruption and fails.
class DurableLog {
 public:
  enum class FsyncMode { kAlways, kGroup, kNever };

  struct Options {
    std::string dir;  // segment directory; created if missing
    FsyncMode fsync_mode = FsyncMode::kGroup;
    /// In kGroup mode, how long the writer lingers after the first queued
    /// record to let a batch accumulate. 0 = flush as soon as the writer
    /// wakes (batching then comes for free from fsync latency itself).
    std::chrono::microseconds group_flush_interval{0};
    /// A batch is flushed no later than when this many encoded bytes are
    /// queued, regardless of the flush interval.
    std::size_t max_group_bytes = 1 << 20;
    /// Rotate to a new segment once the current one exceeds this size (at
    /// the next quiesced boundary).
    std::size_t segment_target_bytes = 4u << 20;
  };

  /// What Open found on disk, for the engine's restore path.
  struct Recovered {
    std::vector<LogRecord> records;  // every record on disk, in LSN order
    std::uint64_t base_lsn = 0;      // LSN of records.front()
    std::uint64_t base_record_seq = 0;  // propagation seq at base_lsn
    bool tail_truncated = false;  // a torn tail was dropped from the last seg
  };

  struct Counters {
    std::uint64_t fsyncs = 0;
    std::uint64_t records_flushed = 0;
    std::uint64_t flush_batches = 0;   // group size mean = flushed/batches
    std::uint64_t max_group_size = 0;  // largest single batch, in records
    std::uint64_t bytes_truncated = 0;
    std::uint64_t segments_created = 0;
  };

  /// Crash-injection points for recovery tests (see SetCrashHook).
  enum class CrashPoint { kAfterWrite, kAfterFsync };

  /// Opens (or creates) the log in `opts.dir`, recovering existing segments
  /// into `recovered` (always filled; empty log => no records, base 0).
  static Result<std::unique_ptr<DurableLog>> Open(const Options& opts,
                                                  Recovered* recovered);

  ~DurableLog();

  /// Queues a record for the writer. `lsn` must be exactly the next LSN
  /// (appends mirror the in-memory LogicalLog one-for-one, in order).
  void Append(std::uint64_t lsn, const LogRecord& record);

  /// Commit-gate wait: blocks until every record with LSN < `end_lsn` is
  /// durable per the configured mode (kNever: returns immediately).
  Status WaitDurable(std::uint64_t end_lsn);

  /// Forces records with LSN < `end_lsn` onto disk now, bypassing the group
  /// flush interval (checkpointer / shutdown path). In kNever mode this
  /// waits for the write but still skips the fsync.
  Status Flush(std::uint64_t end_lsn);

  /// Deletes whole segments lying entirely below `lsn`. The newest segment
  /// is never deleted. Returns the new base LSN (start of the oldest
  /// retained segment).
  Result<std::uint64_t> TruncateBelow(std::uint64_t lsn);

  /// Flushes everything queued and stops the writer. Idempotent.
  void Close();

  std::uint64_t base_lsn() const;
  std::uint64_t flushed_end() const;  // watermark: all LSNs < this are flushed
  std::uint64_t next_lsn() const;
  Counters counters() const;

  /// Test hook, called at crash-injection points on the flushing thread.
  /// Set once right after Open, before any Append.
  void SetCrashHook(std::function<void(CrashPoint)> hook) {
    crash_hook_ = std::move(hook);
  }

 private:
  struct PendingRecord {
    std::uint64_t lsn;
    LogRecord record;
    std::chrono::steady_clock::time_point enqueued;
  };

  explicit DurableLog(Options opts) : opts_(std::move(opts)) {}

  void WriterLoop();
  /// Encodes and writes `batch` to the active segment (rotating at quiesced
  /// boundaries), then fsyncs per mode. Called by the writer thread, or
  /// under io_mu_ in kAlways mode.
  Status WriteBatch(const std::vector<PendingRecord>& batch);
  Status RotateLocked(std::uint64_t next_lsn);
  Status InlineFlush(std::uint64_t end_lsn);  // kAlways path
  void Fire(CrashPoint p) {
    if (crash_hook_) crash_hook_(p);
  }

  const Options opts_;
  std::function<void(CrashPoint)> crash_hook_;

  mutable std::mutex mu_;
  std::condition_variable cv_;        // wakes the writer
  std::condition_variable flush_cv_;  // wakes WaitDurable/Flush waiters
  std::deque<PendingRecord> pending_;
  std::uint64_t next_lsn_ = 0;     // next append LSN
  std::uint64_t flushed_end_ = 0;  // all LSNs < this are on disk
  std::uint64_t flush_target_ = 0;  // writer skips the linger below this
  Status io_status_;               // sticky first I/O failure
  bool stop_ = false;

  std::mutex io_mu_;     // serializes inline flushes in kAlways mode
  std::mutex trunc_mu_;  // serializes TruncateBelow calls
  // Flusher-only state (writer thread, or io_mu_ holder in kAlways mode).
  int seg_fd_ = -1;
  std::uint64_t seg_start_lsn_ = 0;
  std::size_t seg_bytes_ = 0;
  std::uint64_t records_seen_ = 0;     // non-update records written, total
  std::int64_t open_txns_ = 0;         // starts minus commit/aborts written
  std::uint64_t base_lsn_ = 0;

  std::thread writer_;

  // Counters (mutated by the flusher; read from stats threads).
  std::atomic<std::uint64_t> c_fsyncs_{0};
  std::atomic<std::uint64_t> c_records_flushed_{0};
  std::atomic<std::uint64_t> c_flush_batches_{0};
  std::atomic<std::uint64_t> c_max_group_{0};
  std::atomic<std::uint64_t> c_bytes_truncated_{0};
  std::atomic<std::uint64_t> c_segments_{0};
};

/// Parses "<decimal>.seg" segment file names; returns false otherwise.
bool ParseSegmentName(const std::string& name, std::uint64_t* start_lsn);

/// Formats a segment file name for `start_lsn` (zero-padded for sort order).
std::string SegmentName(std::uint64_t start_lsn);

/// Parses a knob string ("always" | "group" | "never") into an FsyncMode;
/// returns false on anything else, leaving *mode untouched.
bool ParseFsyncMode(const std::string& name, DurableLog::FsyncMode* mode);

}  // namespace wal
}  // namespace lazysi

#endif  // LAZYSI_WAL_DURABLE_LOG_H_
