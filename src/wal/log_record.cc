#include "wal/log_record.h"

#include <sstream>

namespace lazysi {
namespace wal {

namespace {

void PutVarint(std::string* out, std::uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

bool GetVarint(const std::string& data, std::size_t* offset,
               std::uint64_t* out) {
  std::uint64_t v = 0;
  int shift = 0;
  while (*offset < data.size()) {
    auto b = static_cast<unsigned char>(data[*offset]);
    ++(*offset);
    // The 10th byte can only contribute the top bit of a 64-bit value:
    // reject continuations and payload bits that would be shifted out, so
    // every value has exactly one accepted encoding of <= 10 bytes.
    if (shift == 63 && (b & 0xfe) != 0) return false;
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) {
      *out = v;
      return true;
    }
    shift += 7;
    if (shift > 63) return false;
  }
  return false;
}

void PutString(std::string* out, const std::string& s) {
  PutVarint(out, s.size());
  out->append(s);
}

bool GetString(const std::string& data, std::size_t* offset,
               std::string* out) {
  std::uint64_t len = 0;
  if (!GetVarint(data, offset, &len)) return false;
  // Not `*offset + len > data.size()`: that sum wraps for len near 2^64.
  if (len > data.size() - *offset) return false;
  out->assign(data, *offset, len);
  *offset += len;
  return true;
}

}  // namespace

void LogRecord::EncodeTo(std::string* out) const {
  out->push_back(static_cast<char>(type));
  PutVarint(out, txn_id);
  switch (type) {
    case LogRecordType::kStart:
    case LogRecordType::kCommit:
      PutVarint(out, timestamp);
      break;
    case LogRecordType::kUpdate:
      PutString(out, key);
      PutString(out, value);
      out->push_back(deleted ? 1 : 0);
      break;
    case LogRecordType::kAbort:
      break;
  }
}

Result<LogRecord> LogRecord::Decode(const std::string& data,
                                    std::size_t* offset) {
  if (*offset >= data.size()) {
    return Status::InvalidArgument("log record: truncated type");
  }
  LogRecord r;
  auto raw = static_cast<std::uint8_t>(data[*offset]);
  ++(*offset);
  if (raw < 1 || raw > 4) {
    return Status::InvalidArgument("log record: bad type byte");
  }
  r.type = static_cast<LogRecordType>(raw);
  std::uint64_t v = 0;
  if (!GetVarint(data, offset, &v)) {
    return Status::InvalidArgument("log record: truncated txn id");
  }
  r.txn_id = v;
  switch (r.type) {
    case LogRecordType::kStart:
    case LogRecordType::kCommit:
      if (!GetVarint(data, offset, &v)) {
        return Status::InvalidArgument("log record: truncated timestamp");
      }
      r.timestamp = v;
      break;
    case LogRecordType::kUpdate: {
      if (!GetString(data, offset, &r.key) ||
          !GetString(data, offset, &r.value)) {
        return Status::InvalidArgument("log record: truncated key/value");
      }
      if (*offset >= data.size()) {
        return Status::InvalidArgument("log record: truncated deleted flag");
      }
      r.deleted = data[*offset] != 0;
      ++(*offset);
      break;
    }
    case LogRecordType::kAbort:
      break;
  }
  return r;
}

std::string LogRecord::ToString() const {
  std::ostringstream os;
  switch (type) {
    case LogRecordType::kStart:
      os << "START txn=" << txn_id << " ts=" << timestamp;
      break;
    case LogRecordType::kUpdate:
      os << "UPDATE txn=" << txn_id << " key=" << key
         << (deleted ? " (delete)" : " value=" + value);
      break;
    case LogRecordType::kCommit:
      os << "COMMIT txn=" << txn_id << " ts=" << timestamp;
      break;
    case LogRecordType::kAbort:
      os << "ABORT txn=" << txn_id;
      break;
  }
  return os.str();
}

}  // namespace wal
}  // namespace lazysi
