#ifndef LAZYSI_COMMON_QUEUE_H_
#define LAZYSI_COMMON_QUEUE_H_

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace lazysi {

/// Unbounded, closable, thread-safe FIFO queue.
///
/// The replication pipeline keeps its queues *outside* the database to avoid
/// first-committer-wins aborts between concurrent refresh transactions that
/// would otherwise contend on queue pages (Section 3.4 of the paper). This is
/// that external queue: the propagator pushes records into each secondary's
/// update queue, and the refresher consumes them in FIFO order.
template <typename T>
class BlockingQueue {
 public:
  /// Pushes an element; wakes one waiting consumer. Returns false if the
  /// queue has been closed (the element is dropped).
  bool Push(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until an element is available or the queue is closed and
  /// drained. Returns nullopt only in the latter case.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Closes the queue: future pushes fail, consumers drain then see nullopt.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  bool empty() const { return size() == 0; }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace lazysi

#endif  // LAZYSI_COMMON_QUEUE_H_
