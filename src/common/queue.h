#ifndef LAZYSI_COMMON_QUEUE_H_
#define LAZYSI_COMMON_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace lazysi {

/// Unbounded, closable, thread-safe FIFO queue.
///
/// The replication pipeline keeps its queues *outside* the database to avoid
/// first-committer-wins aborts between concurrent refresh transactions that
/// would otherwise contend on queue pages (Section 3.4 of the paper). This is
/// that external queue: the propagator pushes records into each secondary's
/// update queue, and the refresher consumes them in FIFO order.
template <typename T>
class BlockingQueue {
 public:
  /// Pushes an element; wakes one waiting consumer. Returns false if the
  /// queue has been closed (the element is dropped).
  bool Push(T item) {
    std::shared_ptr<const std::function<void()>> wake;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return false;
      items_.push_back(std::move(item));
      wake = wakeup_;
    }
    cv_.notify_one();
    if (wake) (*wake)();
    return true;
  }

  /// Pushes a whole burst with a single lock round-trip — the propagator
  /// publishes one burst per sink instead of one lock acquire per record.
  /// Returns false (dropping the burst) if the queue has been closed.
  bool PushAll(const std::vector<T>& items) {
    if (items.empty()) return true;
    std::shared_ptr<const std::function<void()>> wake;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return false;
      items_.insert(items_.end(), items.begin(), items.end());
      wake = wakeup_;
    }
    cv_.notify_all();
    if (wake) (*wake)();
    return true;
  }

  /// Move overload of PushAll for the single-consumer case.
  bool PushAll(std::vector<T>&& items) {
    if (items.empty()) return true;
    std::shared_ptr<const std::function<void()>> wake;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return false;
      items_.insert(items_.end(), std::make_move_iterator(items.begin()),
                    std::make_move_iterator(items.end()));
      wake = wakeup_;
    }
    cv_.notify_all();
    if (wake) (*wake)();
    return true;
  }

  /// Blocks until an element is available or the queue is closed and
  /// drained. Returns nullopt only in the latter case.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Blocks until at least one element is available, then drains up to
  /// `max_items` elements in FIFO order with a single lock round-trip —
  /// consumers that fall behind a burst catch up in one acquire instead of
  /// one per record. An empty result means the queue is closed and drained.
  std::vector<T> PopBatch(std::size_t max_items) {
    std::vector<T> out;
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return !items_.empty() || closed_; });
    const std::size_t n = std::min(max_items, items_.size());
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(std::move(items_.front()));
      items_.pop_front();
    }
    return out;
  }

  /// Unbounded PopBatch: drains everything queued at wake-up time.
  std::vector<T> PopAll() {
    return PopBatch(std::numeric_limits<std::size_t>::max());
  }

  /// Bounded blocking pop: waits up to `timeout` for an element. Returns
  /// nullopt on timeout as well as when the queue is closed and drained —
  /// callers that need to tell the two apart follow up with closed() or a
  /// plain Pop().
  template <typename Rep, typename Period>
  std::optional<T> PopFor(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait_for(lock, timeout, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Non-blocking PopBatch: drains up to `max_items` without waiting. An
  /// empty result just means nothing was queued (poll-style consumers —
  /// the reactor's sink pump — are woken by the wakeup hook instead of
  /// blocking here).
  std::vector<T> TryPopBatch(std::size_t max_items) {
    std::vector<T> out;
    std::lock_guard<std::mutex> lock(mu_);
    const std::size_t n = std::min(max_items, items_.size());
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(std::move(items_.front()));
      items_.pop_front();
    }
    return out;
  }

  /// Installs (or clears, with nullptr) a hook invoked after every
  /// successful Push/PushAll, outside the queue lock. Lets a poll-style
  /// consumer (an event loop) learn about new items without parking a
  /// thread in Pop. The hook must be cheap and must not call back into the
  /// queue's blocking operations.
  void SetWakeup(std::function<void()> fn) {
    auto wake = fn ? std::make_shared<const std::function<void()>>(
                         std::move(fn))
                   : nullptr;
    std::lock_guard<std::mutex> lock(mu_);
    wakeup_ = std::move(wake);
  }

  /// Non-blocking pop.
  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Closes the queue: future pushes fail, consumers drain then see nullopt.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  /// Reopens a closed queue so a restarted producer/consumer pair can reuse
  /// it. Items that survived the close stay queued in order; pushes dropped
  /// while closed are gone for good (the paper's crashed-secondary failure
  /// model, Section 3.4). No-op on an open queue.
  void Reopen() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = false;
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  bool empty() const { return size() == 0; }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
  // Copied out under the lock, invoked outside it (so a slow hook cannot
  // wedge producers against consumers).
  std::shared_ptr<const std::function<void()>> wakeup_;
};

}  // namespace lazysi

#endif  // LAZYSI_COMMON_QUEUE_H_
