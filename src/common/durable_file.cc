#include "common/durable_file.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

namespace lazysi {

std::string ParentDirectory(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Status EnsureDirectory(const std::string& dir) {
  if (dir.empty() || dir == "." || dir == "/") return Status::OK();
  if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) return Status::OK();
  if (errno == ENOENT) {
    LAZYSI_RETURN_NOT_OK(EnsureDirectory(ParentDirectory(dir)));
    if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) {
      return Status::OK();
    }
  }
  return Status::Internal("mkdir " + dir + ": " + std::strerror(errno));
}

Status FsyncDirectory(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::Internal("open directory " + dir + ": " +
                           std::strerror(errno));
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::Internal("fsync directory " + dir + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

Status WriteFileDurably(const std::string& path, const std::string& contents) {
  const std::string tmp = path + ".tmp";
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::Internal("open " + tmp + ": " + std::strerror(errno));
  }
  std::size_t written = 0;
  while (written < contents.size()) {
    const ssize_t n =
        ::write(fd, contents.data() + written, contents.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string err = std::strerror(errno);
      ::close(fd);
      ::unlink(tmp.c_str());
      return Status::Internal("write " + tmp + ": " + err);
    }
    written += static_cast<std::size_t>(n);
  }
  // fsync before rename: otherwise the rename can land on disk ahead of the
  // data and a crash leaves a zero-length or torn file at the final name.
  if (::fsync(fd) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    ::unlink(tmp.c_str());
    return Status::Internal("fsync " + tmp + ": " + err);
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const std::string err = std::strerror(errno);
    ::unlink(tmp.c_str());
    return Status::Internal("rename " + tmp + " -> " + path + ": " + err);
  }
  // fsync the directory so the rename itself survives a crash.
  return FsyncDirectory(ParentDirectory(path));
}

Status ReadWholeFile(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + path);
    return Status::Internal("open " + path + ": " + std::strerror(errno));
  }
  out->clear();
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out->append(buf, n);
  }
  const bool bad = std::ferror(f) != 0;
  std::fclose(f);
  if (bad) return Status::Internal("read " + path);
  return Status::OK();
}

}  // namespace lazysi
