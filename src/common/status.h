#ifndef LAZYSI_COMMON_STATUS_H_
#define LAZYSI_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace lazysi {

/// Error codes used across the library. The set mirrors the failure modes of
/// the replicated system described in the paper:
///  - kWriteConflict: first-committer-wins validation failed (Section 2.1).
///  - kInverted: a history checker detected a transaction inversion.
///  - kUnavailable: a site is shut down or recovering (Section 3.4).
enum class StatusCode {
  kOk = 0,
  kNotFound = 1,
  kInvalidArgument = 2,
  kWriteConflict = 3,
  kAborted = 4,
  kTimedOut = 5,
  kUnavailable = 6,
  kFailedPrecondition = 7,
  kInverted = 8,
  kInternal = 9,
};

/// Returns a stable, human-readable name for a status code ("WriteConflict").
std::string_view StatusCodeName(StatusCode code);

/// Arrow/RocksDB-style status object. All fallible public APIs in this
/// library return Status (or Result<T>) instead of throwing; this keeps the
/// commit path allocation-free on success and makes failure handling explicit
/// at every replication boundary.
///
/// A default-constructed Status is OK and carries no allocation.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Factory helpers, one per code.
  static Status OK() { return Status(); }
  static Status NotFound(std::string msg = "not found") {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status WriteConflict(std::string msg = "first-committer-wins") {
    return Status(StatusCode::kWriteConflict, std::move(msg));
  }
  static Status Aborted(std::string msg = "transaction aborted") {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status TimedOut(std::string msg = "timed out") {
    return Status(StatusCode::kTimedOut, std::move(msg));
  }
  static Status Unavailable(std::string msg = "unavailable") {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Inverted(std::string msg) {
    return Status(StatusCode::kInverted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsWriteConflict() const { return code_ == StatusCode::kWriteConflict; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsTimedOut() const { return code_ == StatusCode::kTimedOut; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsInverted() const { return code_ == StatusCode::kInverted; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

/// Evaluates `expr` (a Status expression) and returns it from the enclosing
/// function if it is not OK.
#define LAZYSI_RETURN_NOT_OK(expr)            \
  do {                                        \
    ::lazysi::Status _st = (expr);            \
    if (!_st.ok()) return _st;                \
  } while (0)

}  // namespace lazysi

#endif  // LAZYSI_COMMON_STATUS_H_
