#ifndef LAZYSI_COMMON_RESULT_H_
#define LAZYSI_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace lazysi {

/// Result<T> carries either a value or a non-OK Status (Arrow idiom).
/// Accessing the value of an errored Result is a programming error and
/// asserts in debug builds.
template <typename T>
class Result {
 public:
  /// Implicit from value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT
  /// Implicit from non-OK status (failure).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the value or `fallback` when errored.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Assigns the value of a Result expression to `lhs`, or returns its status.
#define LAZYSI_ASSIGN_OR_RETURN(lhs, expr)     \
  auto LAZYSI_CONCAT_(_res_, __LINE__) = (expr);             \
  if (!LAZYSI_CONCAT_(_res_, __LINE__).ok())                 \
    return LAZYSI_CONCAT_(_res_, __LINE__).status();         \
  lhs = std::move(LAZYSI_CONCAT_(_res_, __LINE__)).value()

#define LAZYSI_CONCAT_IMPL_(a, b) a##b
#define LAZYSI_CONCAT_(a, b) LAZYSI_CONCAT_IMPL_(a, b)

}  // namespace lazysi

#endif  // LAZYSI_COMMON_RESULT_H_
