#ifndef LAZYSI_COMMON_TIMESTAMP_H_
#define LAZYSI_COMMON_TIMESTAMP_H_

#include <cstdint>

namespace lazysi {

/// Logical timestamp drawn from a site's monotonically increasing counter.
/// One counter per site issues both start and commit timestamps, which gives
/// the paper's requirement that commit(T) be larger than every start or
/// commit timestamp issued so far (Section 2.1).
using Timestamp = std::uint64_t;

/// Sentinel: "no timestamp assigned yet".
inline constexpr Timestamp kInvalidTimestamp = 0;

/// Transaction identifiers, unique per site that originated the transaction.
using TxnId = std::uint64_t;
inline constexpr TxnId kInvalidTxnId = 0;

/// Session label (Section 2.3); equality of labels is what strong session SI
/// constrains. Labels are dense integers handed out by the SessionManager.
using SessionLabel = std::uint64_t;

/// Identifies a site in the replicated system. Site 0 is the primary.
using SiteId = std::uint32_t;
inline constexpr SiteId kPrimarySiteId = 0;

}  // namespace lazysi

#endif  // LAZYSI_COMMON_TIMESTAMP_H_
