#include "common/status.h"

namespace lazysi {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kWriteConflict:
      return "WriteConflict";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kTimedOut:
      return "TimedOut";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInverted:
      return "Inverted";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace lazysi
