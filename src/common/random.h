#ifndef LAZYSI_COMMON_RANDOM_H_
#define LAZYSI_COMMON_RANDOM_H_

#include <cstdint>
#include <random>

namespace lazysi {

/// Seeded random source used by the simulation model and by randomized
/// property tests. Wraps a Mersenne Twister so independent replications can
/// be reproduced from their seed (Section 6.1 runs five independent
/// replications per data point).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Exponentially distributed value with the given mean (> 0).
  /// Session lengths and think times are exponential in the model (Sec. 5).
  double Exponential(double mean) {
    std::exponential_distribution<double> dist(1.0 / mean);
    return dist(engine_);
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive. The model draws transaction
  /// sizes uniformly from 5 to 15 (Sec. 5).
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) {
    std::uniform_int_distribution<std::int64_t> dist(lo, hi);
    return dist(engine_);
  }

  /// True with probability p.
  bool Bernoulli(double p) {
    std::bernoulli_distribution dist(p);
    return dist(engine_);
  }

  /// Uniform value in [0, n).
  std::uint64_t Next(std::uint64_t n) {
    std::uniform_int_distribution<std::uint64_t> dist(0, n - 1);
    return dist(engine_);
  }

  /// Derives an independent child generator; used to give each simulated
  /// client process its own stream.
  Rng Fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace lazysi

#endif  // LAZYSI_COMMON_RANDOM_H_
