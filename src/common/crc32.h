#ifndef LAZYSI_COMMON_CRC32_H_
#define LAZYSI_COMMON_CRC32_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace lazysi {

/// CRC-32C (Castagnoli polynomial, reflected form). Used to checksum wire
/// frames on the fault-injected transport path: the paper assumes messages
/// are never corrupted in transit (Section 3.2), so the reliable channel has
/// to detect corruption itself before the FIFO contract can be re-derived
/// from an unreliable link.
namespace crc32_internal {

constexpr std::uint32_t kPolynomial = 0x82f63b78u;

constexpr std::array<std::uint32_t, 256> MakeTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ kPolynomial : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kTable = MakeTable();

}  // namespace crc32_internal

/// CRC-32C of `data`; pass a previous result as `seed` to extend a running
/// checksum over multiple chunks.
inline std::uint32_t Crc32c(std::string_view data, std::uint32_t seed = 0) {
  std::uint32_t crc = ~seed;
  for (unsigned char c : data) {
    crc = crc32_internal::kTable[(crc ^ c) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

/// Appends `crc` to `out` as 4 little-endian bytes (the wire frame trailer).
inline void AppendCrc32(std::string* out, std::uint32_t crc) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((crc >> (8 * i)) & 0xff));
  }
}

/// Reads a 4-byte little-endian CRC trailer starting at data[offset].
/// The caller must have checked offset + 4 <= data.size().
inline std::uint32_t ReadCrc32(std::string_view data, std::size_t offset) {
  std::uint32_t crc = 0;
  for (int i = 0; i < 4; ++i) {
    crc |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(data[offset + i]))
           << (8 * i);
  }
  return crc;
}

}  // namespace lazysi

#endif  // LAZYSI_COMMON_CRC32_H_
