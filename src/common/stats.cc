#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace lazysi {

void RunningStat::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double RunningStat::ConfidenceHalfWidth95() const {
  if (count_ < 2) return 0.0;
  const double se = stddev() / std::sqrt(static_cast<double>(count_));
  return TCritical95(count_ - 1) * se;
}

void RunningStat::Merge(const RunningStat& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  mean_ = (n1 * mean_ + n2 * other.mean_) / (n1 + n2);
  m2_ = m2_ + other.m2_ + delta * delta * n1 * n2 / (n1 + n2);
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double TCritical95(std::size_t df) {
  static const double kTable[] = {
      0.0,    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
      2.228,  2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093,
      2.086,  2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045,
      2.042};
  if (df == 0) return 0.0;
  if (df <= 30) return kTable[df];
  return 1.96;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      buckets_(buckets, 0) {}

void Histogram::Add(double x) {
  ++count_;
  sum_ += x;
  if (x < lo_) {
    ++underflow_;
  } else if (x >= hi_) {
    ++overflow_;
  } else {
    auto idx = static_cast<std::size_t>((x - lo_) / width_);
    if (idx >= buckets_.size()) idx = buckets_.size() - 1;
    ++buckets_[idx];
  }
}

double Histogram::FractionAtOrBelow(double x) const {
  if (count_ == 0) return 0.0;
  if (x < lo_) return 0.0;
  std::size_t below = underflow_;
  if (x >= hi_) {
    below = count_;  // everything except nothing; overflow included
    return 1.0;
  }
  const double pos = (x - lo_) / width_;
  const auto full = static_cast<std::size_t>(pos);
  for (std::size_t i = 0; i < full && i < buckets_.size(); ++i) {
    below += buckets_[i];
  }
  if (full < buckets_.size()) {
    const double frac = pos - static_cast<double>(full);
    below += static_cast<std::size_t>(frac * static_cast<double>(buckets_[full]));
  }
  return static_cast<double>(below) / static_cast<double>(count_);
}

double Histogram::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::size_t>(q * static_cast<double>(count_));
  std::size_t seen = underflow_;
  if (seen >= target && underflow_ > 0) return lo_;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (seen + buckets_[i] >= target) {
      const double inside =
          buckets_[i] == 0
              ? 0.0
              : static_cast<double>(target - seen) / static_cast<double>(buckets_[i]);
      return lo_ + (static_cast<double>(i) + inside) * width_;
    }
    seen += buckets_[i];
  }
  return hi_;
}

std::string Histogram::ToString() const {
  std::ostringstream os;
  os << "count=" << count_ << " mean=" << mean() << " p50=" << Quantile(0.5)
     << " p95=" << Quantile(0.95) << " p99=" << Quantile(0.99);
  return os.str();
}

}  // namespace lazysi
