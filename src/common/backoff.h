#ifndef LAZYSI_COMMON_BACKOFF_H_
#define LAZYSI_COMMON_BACKOFF_H_

#include <algorithm>
#include <chrono>

#include "common/random.h"

namespace lazysi {

/// Exponential backoff between retries, clamped to [initial, max]. The
/// reliable replication channel uses this for its retransmission timer:
/// each unacknowledged retransmission round doubles the wait, and an
/// acknowledged round resets it, so a lossy-but-alive link retries quickly
/// while a dead link backs off instead of flooding.
class ExponentialBackoff {
 public:
  ExponentialBackoff(std::chrono::milliseconds initial,
                     std::chrono::milliseconds max)
      : initial_(initial.count() > 0 ? initial : std::chrono::milliseconds(1)),
        max_(max > initial_ ? max : initial_),
        current_(initial_) {}

  /// The delay to wait before the next retry; doubles the stored delay for
  /// the retry after that (clamped to the maximum).
  std::chrono::milliseconds Next() {
    const auto delay = current_;
    current_ = std::min(max_, current_ * 2);
    return delay;
  }

  /// Delay the next Next() call would return, without advancing.
  std::chrono::milliseconds current() const { return current_; }

  /// Back to the initial delay (call on success/progress).
  void Reset() { current_ = initial_; }

 private:
  std::chrono::milliseconds initial_;
  std::chrono::milliseconds max_;
  std::chrono::milliseconds current_;
};

/// Randomizes a delay to `delay * (1 ± fraction)` (clamped to ≥ 1ms).
/// Fleet-wide retry loops (replication re-dial, client reconnect) jitter
/// their backoff so a primary outage doesn't synchronize every secondary
/// into lock-step reconnect storms when it returns.
inline std::chrono::milliseconds Jittered(std::chrono::milliseconds delay,
                                          double fraction, Rng* rng) {
  if (fraction <= 0.0 || rng == nullptr) return delay;
  fraction = std::min(fraction, 1.0);
  const double scale = rng->Uniform(1.0 - fraction, 1.0 + fraction);
  const auto jittered = std::chrono::milliseconds(
      static_cast<std::int64_t>(static_cast<double>(delay.count()) * scale));
  return std::max(jittered, std::chrono::milliseconds(1));
}

}  // namespace lazysi

#endif  // LAZYSI_COMMON_BACKOFF_H_
