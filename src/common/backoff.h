#ifndef LAZYSI_COMMON_BACKOFF_H_
#define LAZYSI_COMMON_BACKOFF_H_

#include <chrono>

namespace lazysi {

/// Exponential backoff between retries, clamped to [initial, max]. The
/// reliable replication channel uses this for its retransmission timer:
/// each unacknowledged retransmission round doubles the wait, and an
/// acknowledged round resets it, so a lossy-but-alive link retries quickly
/// while a dead link backs off instead of flooding.
class ExponentialBackoff {
 public:
  ExponentialBackoff(std::chrono::milliseconds initial,
                     std::chrono::milliseconds max)
      : initial_(initial.count() > 0 ? initial : std::chrono::milliseconds(1)),
        max_(max > initial_ ? max : initial_),
        current_(initial_) {}

  /// The delay to wait before the next retry; doubles the stored delay for
  /// the retry after that (clamped to the maximum).
  std::chrono::milliseconds Next() {
    const auto delay = current_;
    current_ = std::min(max_, current_ * 2);
    return delay;
  }

  /// Delay the next Next() call would return, without advancing.
  std::chrono::milliseconds current() const { return current_; }

  /// Back to the initial delay (call on success/progress).
  void Reset() { current_ = initial_; }

 private:
  std::chrono::milliseconds initial_;
  std::chrono::milliseconds max_;
  std::chrono::milliseconds current_;
};

}  // namespace lazysi

#endif  // LAZYSI_COMMON_BACKOFF_H_
