#ifndef LAZYSI_COMMON_LOGGING_H_
#define LAZYSI_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>

namespace lazysi {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Minimal leveled logger. Replication components log propagation/refresh
/// events at kDebug; the default threshold is kWarn so tests stay quiet.
class Logger {
 public:
  static Logger& Get() {
    static Logger logger;
    return logger;
  }

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  void Write(LogLevel level, const std::string& msg) {
    if (level < level_) return;
    static std::mutex mu;
    std::lock_guard<std::mutex> lock(mu);
    std::cerr << "[" << Name(level) << "] " << msg << "\n";
  }

 private:
  Logger() {
    if (const char* env = std::getenv("LAZYSI_LOG_LEVEL")) {
      std::string v(env);
      if (v == "debug") level_ = LogLevel::kDebug;
      else if (v == "info") level_ = LogLevel::kInfo;
      else if (v == "warn") level_ = LogLevel::kWarn;
      else if (v == "error") level_ = LogLevel::kError;
      else if (v == "off") level_ = LogLevel::kOff;
    }
  }

  static const char* Name(LogLevel level) {
    switch (level) {
      case LogLevel::kDebug: return "DEBUG";
      case LogLevel::kInfo: return "INFO";
      case LogLevel::kWarn: return "WARN";
      case LogLevel::kError: return "ERROR";
      case LogLevel::kOff: return "OFF";
    }
    return "?";
  }

  LogLevel level_ = LogLevel::kWarn;
};

#define LAZYSI_LOG(lvl, expr)                                     \
  do {                                                            \
    if (::lazysi::LogLevel::lvl >= ::lazysi::Logger::Get().level()) { \
      std::ostringstream _os;                                     \
      _os << expr;                                                \
      ::lazysi::Logger::Get().Write(::lazysi::LogLevel::lvl, _os.str()); \
    }                                                             \
  } while (0)

#define LAZYSI_DEBUG(expr) LAZYSI_LOG(kDebug, expr)
#define LAZYSI_INFO(expr) LAZYSI_LOG(kInfo, expr)
#define LAZYSI_WARN(expr) LAZYSI_LOG(kWarn, expr)
#define LAZYSI_ERROR(expr) LAZYSI_LOG(kError, expr)

}  // namespace lazysi

#endif  // LAZYSI_COMMON_LOGGING_H_
