#ifndef LAZYSI_COMMON_STATS_H_
#define LAZYSI_COMMON_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

namespace lazysi {

/// Streaming accumulator for a scalar statistic (Welford's algorithm).
/// Used both for per-run response-time means and for cross-replication
/// confidence intervals (the paper reports 95% confidence intervals over
/// five independent runs, Section 6.1).
class RunningStat {
 public:
  void Add(double x);

  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

  /// Half-width of the 95% confidence interval around the mean, using
  /// Student's t critical values for small sample counts.
  double ConfidenceHalfWidth95() const;

  void Merge(const RunningStat& other);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Two-sided 95% Student-t critical value for `df` degrees of freedom.
/// Exact table entries for df <= 30, 1.96 asymptote beyond.
double TCritical95(std::size_t df);

/// Fixed-width histogram over [lo, hi) with out-of-range overflow buckets.
/// Used by the simulation model to report response-time distributions and to
/// compute the "finished within 3 seconds" throughput of Figures 2, 5, 8.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void Add(double x);

  std::size_t count() const { return count_; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }

  /// Fraction of samples <= x (linear interpolation inside buckets).
  double FractionAtOrBelow(double x) const;

  /// Approximate quantile in [0,1].
  double Quantile(double q) const;

  std::string ToString() const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> buckets_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t count_ = 0;
  double sum_ = 0.0;
};

}  // namespace lazysi

#endif  // LAZYSI_COMMON_STATS_H_
