#ifndef LAZYSI_COMMON_DURABLE_FILE_H_
#define LAZYSI_COMMON_DURABLE_FILE_H_

#include <string>

#include "common/status.h"

namespace lazysi {

/// Crash-safe whole-file replacement: write `contents` to a temp file in the
/// same directory, fsync the temp file, rename() it over `path`, then fsync
/// the parent directory so the rename itself is durable. After a crash the
/// file at `path` is either the old contents or the new contents, never a
/// torn or zero-length intermediate.
Status WriteFileDurably(const std::string& path, const std::string& contents);

/// Reads an entire file into `out`. NotFound if the file does not exist.
Status ReadWholeFile(const std::string& path, std::string* out);

/// fsync() of a directory (makes renames/creates/unlinks inside it durable).
Status FsyncDirectory(const std::string& dir);

/// Returns the parent directory of `path` ("." if it has no separator).
std::string ParentDirectory(const std::string& path);

/// Creates `dir` (and missing parents). OK if it already exists.
Status EnsureDirectory(const std::string& dir);

}  // namespace lazysi

#endif  // LAZYSI_COMMON_DURABLE_FILE_H_
