#ifndef LAZYSI_COMMON_HASH_H_
#define LAZYSI_COMMON_HASH_H_

#include <cstdint>
#include <string_view>

namespace lazysi {

/// 64-bit FNV-1a. Stable across platforms; used for database state chains.
inline std::uint64_t Fnv1a64(std::string_view data,
                             std::uint64_t seed = 0xcbf29ce484222325ULL) {
  std::uint64_t h = seed;
  for (unsigned char c : data) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Mixes an integer into a running hash (splitmix64 finalizer).
inline std::uint64_t HashMix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

/// Incremental database-state hash chain used to check completeness
/// (Theorem 3.1): state_i = Mix(state_{i-1}, hash of the i-th committed
/// transaction's write set). Two sites that install identical write sets in
/// identical order produce identical chains; any divergence in order or
/// content diverges the chain with overwhelming probability.
class StateChain {
 public:
  std::uint64_t value() const { return value_; }

  /// Folds one (key, value, deleted) triple of the current write set.
  void FoldWrite(std::string_view key, std::string_view value, bool deleted) {
    pending_ = Fnv1a64(key, pending_);
    pending_ = Fnv1a64(value, pending_);
    pending_ = HashMix(pending_, deleted ? 1 : 0);
  }

  /// Seals the current write set as one committed transaction and advances
  /// the chain.
  void SealTransaction() {
    value_ = HashMix(value_, pending_);
    pending_ = 0xcbf29ce484222325ULL;
  }

 private:
  std::uint64_t value_ = 0;
  std::uint64_t pending_ = 0xcbf29ce484222325ULL;
};

}  // namespace lazysi

#endif  // LAZYSI_COMMON_HASH_H_
