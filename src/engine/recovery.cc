#include "engine/recovery.h"

#include <cstdio>
#include <cstring>
#include <map>

#include "common/hash.h"

namespace lazysi {
namespace engine {

namespace {

constexpr char kMagic[8] = {'L', 'Z', 'S', 'I', 'C', 'K', 'P', '1'};

void PutVarint(std::string* out, std::uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

bool GetVarint(const std::string& data, std::size_t* offset,
               std::uint64_t* out) {
  std::uint64_t v = 0;
  int shift = 0;
  while (*offset < data.size() && shift <= 63) {
    auto b = static_cast<unsigned char>(data[*offset]);
    ++(*offset);
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) {
      *out = v;
      return true;
    }
    shift += 7;
  }
  return false;
}

void PutString(std::string* out, const std::string& s) {
  PutVarint(out, s.size());
  out->append(s);
}

bool GetString(const std::string& data, std::size_t* offset,
               std::string* out) {
  std::uint64_t len = 0;
  if (!GetVarint(data, offset, &len)) return false;
  if (*offset + len > data.size()) return false;
  out->assign(data, *offset, len);
  *offset += len;
  return true;
}

void AppendLE64(std::string* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

std::uint64_t ReadLE64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  }
  return v;
}

}  // namespace

Status SaveCheckpoint(const Database::Checkpoint& checkpoint,
                      const std::string& path) {
  std::string payload;
  PutVarint(&payload, checkpoint.as_of);
  PutVarint(&payload, checkpoint.lsn);
  PutVarint(&payload, checkpoint.state.size());
  for (const auto& [key, value] : checkpoint.state) {
    PutString(&payload, key);
    PutString(&payload, value);
  }

  std::string file;
  file.append(kMagic, sizeof(kMagic));
  file.append(payload);
  AppendLE64(&file, Fnv1a64(payload));

  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("cannot open '" + tmp + "' for writing");
  }
  const std::size_t written = std::fwrite(file.data(), 1, file.size(), f);
  const bool flushed = std::fflush(f) == 0;
  std::fclose(f);
  if (written != file.size() || !flushed) {
    std::remove(tmp.c_str());
    return Status::Internal("short write to '" + tmp + "'");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("rename to '" + path + "' failed");
  }
  return Status::OK();
}

Result<Database::Checkpoint> LoadCheckpoint(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("cannot open '" + path + "'");
  std::string file;
  char buffer[1 << 16];
  std::size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    file.append(buffer, n);
  }
  std::fclose(f);

  if (file.size() < sizeof(kMagic) + 8 ||
      std::memcmp(file.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("'" + path +
                                   "' is not a lazysi checkpoint");
  }
  const std::string payload =
      file.substr(sizeof(kMagic), file.size() - sizeof(kMagic) - 8);
  if (Fnv1a64(payload) != ReadLE64(file.data() + file.size() - 8)) {
    return Status::InvalidArgument("'" + path + "' failed checksum");
  }

  Database::Checkpoint cp;
  std::size_t offset = 0;
  std::uint64_t as_of = 0, lsn = 0, count = 0;
  if (!GetVarint(payload, &offset, &as_of) ||
      !GetVarint(payload, &offset, &lsn) ||
      !GetVarint(payload, &offset, &count)) {
    return Status::InvalidArgument("checkpoint header truncated");
  }
  cp.as_of = as_of;
  cp.lsn = lsn;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::string key, value;
    if (!GetString(payload, &offset, &key) ||
        !GetString(payload, &offset, &value)) {
      return Status::InvalidArgument("checkpoint entry truncated");
    }
    cp.state[key] = value;
  }
  if (offset != payload.size()) {
    return Status::InvalidArgument("checkpoint has trailing bytes");
  }
  return cp;
}

Result<std::size_t> ReplayLog(Database* db,
                              const std::vector<wal::LogRecord>& records) {
  // Rebuild per-transaction update lists exactly like the propagator
  // (Algorithm 3.1), then apply each committed transaction in log order.
  std::map<TxnId, std::vector<storage::Write>> lists;
  std::size_t applied = 0;
  for (const auto& record : records) {
    switch (record.type) {
      case wal::LogRecordType::kStart:
        lists[record.txn_id];
        break;
      case wal::LogRecordType::kUpdate:
        lists[record.txn_id].push_back(
            storage::Write{record.key, record.value, record.deleted});
        break;
      case wal::LogRecordType::kCommit: {
        auto it = lists.find(record.txn_id);
        if (it == lists.end()) {
          return Status::FailedPrecondition(
              "log replay: commit for a transaction whose start precedes "
              "the segment (checkpoint not quiesced)");
        }
        auto txn = db->Begin();
        for (const auto& w : it->second) {
          Status s = w.deleted ? txn->Delete(w.key) : txn->Put(w.key, w.value);
          if (!s.ok()) return s;
        }
        LAZYSI_RETURN_NOT_OK(txn->Commit());
        lists.erase(it);
        ++applied;
        break;
      }
      case wal::LogRecordType::kAbort:
        lists.erase(record.txn_id);
        break;
    }
  }
  return applied;
}

}  // namespace engine
}  // namespace lazysi
