#include "engine/recovery.h"

#include <cstdio>
#include <cstring>
#include <map>
#include <memory>

#include "common/durable_file.h"
#include "common/hash.h"

namespace lazysi {
namespace engine {

namespace {

constexpr char kMagic[8] = {'L', 'Z', 'S', 'I', 'C', 'K', 'P', '1'};

void PutVarint(std::string* out, std::uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

bool GetVarint(const std::string& data, std::size_t* offset,
               std::uint64_t* out) {
  std::uint64_t v = 0;
  int shift = 0;
  while (*offset < data.size() && shift <= 63) {
    auto b = static_cast<unsigned char>(data[*offset]);
    ++(*offset);
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) {
      *out = v;
      return true;
    }
    shift += 7;
  }
  return false;
}

void PutString(std::string* out, const std::string& s) {
  PutVarint(out, s.size());
  out->append(s);
}

bool GetString(const std::string& data, std::size_t* offset,
               std::string* out) {
  std::uint64_t len = 0;
  if (!GetVarint(data, offset, &len)) return false;
  if (*offset + len > data.size()) return false;
  out->assign(data, *offset, len);
  *offset += len;
  return true;
}

void AppendLE64(std::string* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

std::uint64_t ReadLE64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  }
  return v;
}

}  // namespace

Status SaveCheckpoint(const Database::Checkpoint& checkpoint,
                      const std::string& path) {
  std::string payload;
  PutVarint(&payload, checkpoint.as_of);
  PutVarint(&payload, checkpoint.lsn);
  PutVarint(&payload, checkpoint.state.size());
  for (const auto& [key, value] : checkpoint.state) {
    PutString(&payload, key);
    PutString(&payload, value);
  }

  std::string file;
  file.append(kMagic, sizeof(kMagic));
  file.append(payload);
  AppendLE64(&file, Fnv1a64(payload));

  // fsync the temp file before the rename and the directory after it: a
  // checkpoint named in a manifest must never read back zero-length or torn.
  return WriteFileDurably(path, file);
}

Result<Database::Checkpoint> LoadCheckpoint(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("cannot open '" + path + "'");
  std::string file;
  char buffer[1 << 16];
  std::size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    file.append(buffer, n);
  }
  std::fclose(f);

  if (file.size() < sizeof(kMagic) + 8 ||
      std::memcmp(file.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("'" + path +
                                   "' is not a lazysi checkpoint");
  }
  const std::string payload =
      file.substr(sizeof(kMagic), file.size() - sizeof(kMagic) - 8);
  if (Fnv1a64(payload) != ReadLE64(file.data() + file.size() - 8)) {
    return Status::InvalidArgument("'" + path + "' failed checksum");
  }

  Database::Checkpoint cp;
  std::size_t offset = 0;
  std::uint64_t as_of = 0, lsn = 0, count = 0;
  if (!GetVarint(payload, &offset, &as_of) ||
      !GetVarint(payload, &offset, &lsn) ||
      !GetVarint(payload, &offset, &count)) {
    return Status::InvalidArgument("checkpoint header truncated");
  }
  cp.as_of = as_of;
  cp.lsn = lsn;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::string key, value;
    if (!GetString(payload, &offset, &key) ||
        !GetString(payload, &offset, &value)) {
      return Status::InvalidArgument("checkpoint entry truncated");
    }
    cp.state[key] = value;
  }
  if (offset != payload.size()) {
    return Status::InvalidArgument("checkpoint has trailing bytes");
  }
  return cp;
}

namespace {

/// Legacy replay engine: one full local transaction per committed primary
/// transaction, through the complete Begin/Put/Commit concurrency control.
Result<std::size_t> ReplayTransactional(
    Database* db, const std::vector<wal::LogRecord>& records) {
  // Rebuild per-transaction update lists exactly like the propagator
  // (Algorithm 3.1), then apply each committed transaction in log order.
  std::map<TxnId, std::vector<storage::Write>> lists;
  std::size_t applied = 0;
  for (const auto& record : records) {
    switch (record.type) {
      case wal::LogRecordType::kStart:
        lists[record.txn_id];
        break;
      case wal::LogRecordType::kUpdate:
        lists[record.txn_id].push_back(
            storage::Write{record.key, record.value, record.deleted});
        break;
      case wal::LogRecordType::kCommit: {
        auto it = lists.find(record.txn_id);
        if (it == lists.end()) {
          return Status::FailedPrecondition(
              "log replay: commit for a transaction whose start precedes "
              "the segment (checkpoint not quiesced)");
        }
        auto txn = db->Begin();
        for (const auto& w : it->second) {
          Status s = w.deleted ? txn->Delete(w.key) : txn->Put(w.key, w.value);
          if (!s.ok()) return s;
        }
        LAZYSI_RETURN_NOT_OK(txn->Commit());
        lists.erase(it);
        ++applied;
        break;
      }
      case wal::LogRecordType::kAbort:
        lists.erase(record.txn_id);
        break;
    }
  }
  return applied;
}

/// Group-apply replay engine: write sets go through the externally-ordered
/// commit protocol and runs of consecutive commits install in one
/// VersionedStore pass, exactly like the secondary's direct-apply refresher
/// (which is what replay simulates — see the file comment). FCW validation
/// is safely skipped: the records come from one site's log, where
/// conflicting transactions were never concurrent.
Result<std::size_t> ReplayGrouped(Database* db,
                                  const std::vector<wal::LogRecord>& records,
                                  const ReplayOptions& options) {
  struct Replaying {
    TxnId local_id = 0;
    std::vector<storage::Write> updates;
  };
  struct PendingInstall {
    std::unique_ptr<storage::WriteSet> writes;  // alive until Finish
    Timestamp local_commit_ts = kInvalidTimestamp;
  };
  txn::TxnManager* mgr = db->txn_manager();
  std::map<TxnId, Replaying> lists;
  std::vector<PendingInstall> group;
  const std::size_t group_limit = options.group_limit > 0 ? options.group_limit
                                                          : 1;
  // Installs the buffered run in one store pass, then publishes visibility
  // in allocation order (BeginExternalCommit was called in log order, so the
  // buffer is already sorted by commit timestamp as ApplyBatch requires).
  const auto flush = [&] {
    if (group.empty()) return;
    std::vector<storage::VersionedStore::TimestampedWrites> batch;
    batch.reserve(group.size());
    for (const auto& p : group) {
      batch.push_back({p.writes.get(), p.local_commit_ts});
    }
    db->store()->ApplyBatch(batch);
    for (const auto& p : group) {
      mgr->FinishExternalCommit(p.local_commit_ts);
    }
    group.clear();
  };
  std::size_t applied = 0;
  for (const auto& record : records) {
    switch (record.type) {
      case wal::LogRecordType::kStart: {
        Replaying& r = lists[record.txn_id];
        r.local_id = mgr->AllocateTxnId();
        mgr->ExternalStart(r.local_id);
        break;
      }
      case wal::LogRecordType::kUpdate:
        lists[record.txn_id].updates.push_back(
            storage::Write{record.key, record.value, record.deleted});
        break;
      case wal::LogRecordType::kCommit: {
        auto it = lists.find(record.txn_id);
        if (it == lists.end()) {
          flush();
          return Status::FailedPrecondition(
              "log replay: commit for a transaction whose start precedes "
              "the segment (checkpoint not quiesced)");
        }
        PendingInstall pending;
        pending.writes = std::make_unique<storage::WriteSet>();
        for (const auto& w : it->second.updates) {
          if (w.deleted) {
            pending.writes->Delete(w.key);
          } else {
            pending.writes->Put(w.key, w.value);
          }
        }
        pending.local_commit_ts =
            mgr->BeginExternalCommit(it->second.local_id, *pending.writes);
        group.push_back(std::move(pending));
        lists.erase(it);
        ++applied;
        if (group.size() >= group_limit) flush();
        break;
      }
      case wal::LogRecordType::kAbort: {
        auto it = lists.find(record.txn_id);
        if (it != lists.end()) {
          mgr->ExternalAbort(it->second.local_id);
          lists.erase(it);
        }
        break;
      }
    }
  }
  flush();
  // Transactions whose start is in the segment but whose outcome is not
  // (crash mid-transaction): never committed, so abort them locally.
  for (const auto& [id, r] : lists) mgr->ExternalAbort(r.local_id);
  return applied;
}

}  // namespace

Result<std::size_t> ReplayLog(Database* db,
                              const std::vector<wal::LogRecord>& records,
                              ReplayOptions options) {
  return options.group_apply ? ReplayGrouped(db, records, options)
                             : ReplayTransactional(db, records);
}

}  // namespace engine
}  // namespace lazysi
