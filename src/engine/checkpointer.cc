#include "engine/checkpointer.h"

#include <algorithm>
#include <cstdio>

#include <unistd.h>

#include "common/durable_file.h"
#include "common/logging.h"

namespace lazysi {
namespace engine {

namespace {
constexpr char kManifestName[] = "MANIFEST";
constexpr char kManifestMagic[] = "LZSIMAN1";
}  // namespace

Status WriteManifest(const std::string& data_dir, const Manifest& manifest) {
  std::string text(kManifestMagic);
  text += "\ncheckpoint_lsn=" + std::to_string(manifest.checkpoint_lsn);
  text += "\ncheckpoint_file=" + manifest.checkpoint_file;
  text += "\n";
  return WriteFileDurably(data_dir + "/" + kManifestName, text);
}

Result<Manifest> LoadManifest(const std::string& data_dir) {
  std::string text;
  LAZYSI_RETURN_NOT_OK(ReadWholeFile(data_dir + "/" + kManifestName, &text));
  if (text.rfind(kManifestMagic, 0) != 0) {
    return Status::InvalidArgument("bad manifest magic in " + data_dir);
  }
  Manifest m;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) continue;
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    if (key == "checkpoint_lsn") {
      m.checkpoint_lsn = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "checkpoint_file") {
      m.checkpoint_file = value;
    }
  }
  return m;
}

Checkpointer::Checkpointer(Database* db, wal::DurableLog* durable,
                           Options options)
    : db_(db), durable_(durable), options_(std::move(options)) {}

Checkpointer::~Checkpointer() { Stop(); }

void Checkpointer::Start() {
  if (options_.interval.count() <= 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) return;
  started_ = true;
  stop_ = false;
  thread_ = std::thread(&Checkpointer::Loop, this);
}

void Checkpointer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  started_ = false;
}

void Checkpointer::Loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (cv_.wait_for(lock, options_.interval, [this] { return stop_; })) {
        return;
      }
    }
    Status s = CheckpointNow();
    if (!s.ok()) {
      LAZYSI_WARN("checkpointer: cycle failed: " << s.ToString());
    }
  }
}

Status Checkpointer::CheckpointNow() {
  // 1. Consistent (state, LSN) pair at the visibility watermark.
  Database::Checkpoint cp = db_->TakeCheckpoint();

  // 2. The checkpoint claims "everything below cp.lsn is reflected here";
  // nothing may reference it until those records are actually on disk.
  LAZYSI_RETURN_NOT_OK(durable_->Flush(cp.lsn));

  // 3. Persist the snapshot, then swing the manifest (both durable renames).
  const std::string file = "checkpoint-" + std::to_string(cp.lsn);
  LAZYSI_RETURN_NOT_OK(SaveCheckpoint(cp, options_.data_dir + "/" + file));
  Manifest m;
  m.checkpoint_lsn = cp.lsn;
  m.checkpoint_file = file;
  LAZYSI_RETURN_NOT_OK(WriteManifest(options_.data_dir, m));
  std::string previous;
  {
    std::lock_guard<std::mutex> lock(mu_);
    previous = current_checkpoint_file_;
    current_checkpoint_file_ = file;
  }
  if (!previous.empty() && previous != file) {
    ::unlink((options_.data_dir + "/" + previous).c_str());
  }

  // 4. Truncate the durable log below the floor: the checkpoint LSN, held
  // back by any propagation sink that still needs older records for resync.
  std::uint64_t floor = cp.lsn;
  if (options_.log_floor) {
    floor = std::min<std::uint64_t>(floor, options_.log_floor());
  }
  auto new_base = durable_->TruncateBelow(floor);
  if (!new_base.ok()) return new_base.status();

  // 5. Mirror into the in-memory log, bounding it to the live suffix.
  db_->log()->TruncateBelow(*new_base);

  checkpoint_count_.fetch_add(1, std::memory_order_relaxed);
  last_checkpoint_lsn_.store(cp.lsn, std::memory_order_relaxed);
  return Status::OK();
}

Result<DataDirState> OpenDataDir(Database* db, const std::string& data_dir,
                                 wal::DurableLog::Options log_options) {
  LAZYSI_RETURN_NOT_OK(EnsureDirectory(data_dir));
  log_options.dir = data_dir + "/wal";

  DataDirState state;
  wal::DurableLog::Recovered recovered;
  auto durable = wal::DurableLog::Open(log_options, &recovered);
  if (!durable.ok()) return durable.status();
  state.durable = std::move(durable).value();
  state.base_lsn = recovered.base_lsn;
  state.base_record_seq = recovered.base_record_seq;
  state.tail_truncated = recovered.tail_truncated;

  Database::Checkpoint cp;
  bool have_checkpoint = false;
  auto manifest = LoadManifest(data_dir);
  if (manifest.ok() && !manifest->checkpoint_file.empty()) {
    auto loaded =
        LoadCheckpoint(data_dir + "/" + manifest->checkpoint_file);
    if (!loaded.ok()) return loaded.status();
    cp = std::move(loaded).value();
    have_checkpoint = true;
  } else if (!manifest.ok() && !manifest.status().IsNotFound()) {
    return manifest.status();
  }

  state.had_state = have_checkpoint || !recovered.records.empty();
  auto report = db->RestoreFromDurable(have_checkpoint ? &cp : nullptr,
                                       recovered.records, recovered.base_lsn,
                                       state.durable.get());
  if (!report.ok()) return report.status();
  state.report = std::move(report).value();
  db->AttachDurableLog(state.durable.get());
  return state;
}

}  // namespace engine
}  // namespace lazysi
