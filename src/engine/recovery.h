#ifndef LAZYSI_ENGINE_RECOVERY_H_
#define LAZYSI_ENGINE_RECOVERY_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "engine/database.h"
#include "wal/log_record.h"

namespace lazysi {
namespace engine {

/// Durable site restart (complements the *replication-based* secondary
/// recovery of Section 3.4, which copies state from the live primary):
///
///   1. periodically SaveCheckpoint() while quiesced and persist the log
///      suffix with wal::LogFile;
///   2. after a crash, LoadCheckpoint() into a fresh Database and
///      ReplayLog() the persisted suffix.
///
/// Replay applies committed transactions in log order — equivalent to a
/// refresher running Algorithm 3.2/3.3 serially against the local store —
/// so the restored state-hash chain extends the checkpoint exactly as the
/// original site's did.

/// Serializes a checkpoint to `path` (atomic rename, checksummed).
Status SaveCheckpoint(const Database::Checkpoint& checkpoint,
                      const std::string& path);

/// Reads a checkpoint written by SaveCheckpoint.
Result<Database::Checkpoint> LoadCheckpoint(const std::string& path);

struct ReplayOptions {
  /// Group-apply engine: replayed write sets go through the externally-
  /// ordered commit protocol (TxnManager::BeginExternalCommit +
  /// VersionedStore::ApplyBatch), installing runs of consecutive commits in
  /// one store pass each — the same machinery the secondary's direct-apply
  /// refresher uses, so replay cost matches refresh cost instead of paying
  /// full Begin/Put/Commit concurrency control per transaction. False runs
  /// the legacy one-transaction-per-commit path.
  bool group_apply = false;
  /// Group-apply only: upper bound on commits installed per store pass.
  std::size_t group_limit = 32;
};

/// Applies the committed transactions found in `records` to `db`, one local
/// transaction per primary transaction, in commit order. Updates belonging
/// to transactions that aborted (or never committed within `records`) are
/// discarded. Returns the number of transactions applied. Both replay
/// engines produce the same state and state-hash chain (asserted
/// differentially in recovery_test).
Result<std::size_t> ReplayLog(Database* db,
                              const std::vector<wal::LogRecord>& records,
                              ReplayOptions options = ReplayOptions());

}  // namespace engine
}  // namespace lazysi

#endif  // LAZYSI_ENGINE_RECOVERY_H_
