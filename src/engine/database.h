#ifndef LAZYSI_ENGINE_DATABASE_H_
#define LAZYSI_ENGINE_DATABASE_H_

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/hash.h"
#include "common/result.h"
#include "common/status.h"
#include "common/timestamp.h"
#include "storage/versioned_store.h"
#include "txn/txn_manager.h"
#include "txn/txn_observer.h"
#include "wal/durable_log.h"
#include "wal/logical_log.h"

namespace lazysi {
namespace engine {

struct DatabaseOptions {
  /// Site identifier, for diagnostics (0 = primary by convention).
  SiteId site_id = kPrimarySiteId;
  /// Human-readable site name.
  std::string name = "site";
  /// Record the per-commit state-hash chain. Enables completeness
  /// (Theorem 3.1) assertions; costs one vector entry per committed update
  /// transaction, so long-running deployments may disable it.
  bool record_state_chain = true;
  /// Lock stripes of the MVCC store (rounded up to a power of two). One
  /// shard reproduces the single-global-lock layout; the default spreads
  /// concurrent point reads/installs across independent locks.
  std::size_t store_shards = storage::VersionedStore::kDefaultShardCount;
};

/// One entry of the state-hash chain: the database state produced by the
/// i-th committed update transaction (S_i in the paper's notation), as a
/// 64-bit fingerprint.
struct StateChainEntry {
  Timestamp commit_ts;
  std::uint64_t hash;

  bool operator==(const StateChainEntry&) const = default;
};

/// An autonomous site database: MVCC store + strong SI transaction manager +
/// logical log, i.e. the "autonomous database management system with a local
/// concurrency controller that guarantees strong SI and is deadlock-free" of
/// Section 3. Every site in the replicated system (primary and secondaries)
/// is one of these.
class Database : private txn::TxnObserver {
 public:
  explicit Database(DatabaseOptions options = DatabaseOptions());
  ~Database() override;

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Begins a transaction at the latest committed snapshot (strong SI).
  std::unique_ptr<txn::Transaction> Begin(bool read_only = false);

  /// Begins a read-only transaction pinned to a historical snapshot (time
  /// travel; see TxnManager::BeginAtSnapshot).
  Result<std::unique_ptr<txn::Transaction>> BeginAtSnapshot(
      Timestamp snapshot) {
    return txn_manager_.BeginAtSnapshot(snapshot);
  }

  /// Auto-commit conveniences.
  Result<std::string> Get(const std::string& key);
  Status Put(const std::string& key, std::string value);
  Status Delete(const std::string& key);

  /// Timestamp of the most recent committed update transaction.
  Timestamp LatestCommitTs() const { return txn_manager_.LatestCommitTs(); }

  /// Version garbage collection: drops every version shadowed at the safe
  /// horizon (the oldest snapshot any in-flight transaction can read).
  /// Returns the number of versions reclaimed. Always safe to call — a
  /// long-running reader simply pins the horizon, and concurrent historical
  /// Begins are covered by the floor handshake: the pruning upper bound is
  /// published *before* the horizon scan of the active-snapshot table, and
  /// the horizon is clamped to that bound, so a reader either appears in
  /// the scan (horizon <= its snapshot) or observes the floor and reads
  /// under the shard locks (see VersionedStore's reclamation contract).
  std::size_t GarbageCollect() {
    const Timestamp bound = txn_manager_.LatestCommitTs();
    store_.RaiseGcFloor(bound);
    return store_.PruneVersions(
        std::min(bound, txn_manager_.MinActiveSnapshot()));
  }

  storage::VersionedStore* store() { return &store_; }
  txn::TxnManager* txn_manager() { return &txn_manager_; }
  wal::LogicalLog* log() { return &log_; }
  const DatabaseOptions& options() const { return options_; }

  /// Fingerprint of the current database state (last chain entry), and the
  /// full chain history (empty when record_state_chain is off). Two sites
  /// that installed identical write sets in identical commit order have
  /// equal chains — the executable form of Theorem 3.1.
  std::uint64_t StateHash() const;
  std::vector<StateChainEntry> StateChainHistory() const;

  /// Point-in-time checkpoint for secondary recovery (Section 3.4). Call
  /// only when the site is quiesced (no in-flight update transactions);
  /// `lsn` is the log position from which a recovering secondary must replay.
  struct Checkpoint {
    std::map<std::string, std::string> state;
    Timestamp as_of = kInvalidTimestamp;
    std::size_t lsn = 0;
  };
  Checkpoint TakeCheckpoint() const;

  /// Installs a checkpoint into this (empty) database as one bulk
  /// transaction. Returns the local commit timestamp of the install.
  Result<Timestamp> InstallCheckpoint(const Checkpoint& checkpoint);

  /// Attaches a durable on-disk mirror of the logical log: every record the
  /// observers append is also queued on `durable` under the same LSN, and
  /// every commit acknowledgement blocks on the flushed-LSN watermark (the
  /// group-commit ack rule). Attach before any transaction runs (or right
  /// after RestoreFromDurable).
  void AttachDurableLog(wal::DurableLog* durable);

  /// The attached durable log; null for an in-memory database.
  wal::DurableLog* durable() const { return durable_; }

  struct RestoreReport {
    std::size_t records_replayed = 0;   // suffix records re-appended
    std::size_t commits_applied = 0;    // commits above the checkpoint
    std::size_t unresolved_aborted = 0;  // synthetic aborts for torn txns
    Timestamp restored_visible = kInvalidTimestamp;
  };

  /// Primary restart (Section 3.4): rebuilds this *fresh* database from a
  /// checkpoint (may be null) plus the durable log suffix starting at
  /// absolute LSN `suffix_base_lsn`. Original commit timestamps are
  /// preserved — sessions hold seq(c) = primary commit timestamps and
  /// secondaries dedupe by record seq, so recovery must not renumber
  /// anything. Commits with timestamp <= checkpoint->as_of are already in
  /// the checkpoint state and are skipped (TakeCheckpoint guarantees the
  /// (state, LSN) pair is consistent); later commits are applied at their
  /// logged timestamps. Transactions left unresolved by the crash get
  /// synthetic abort records, appended both here and to `durable` (if
  /// given) so propagation update lists quiesce. Seeds the transaction
  /// manager's clock/watermark/txn-id counters past everything restored.
  Result<RestoreReport> RestoreFromDurable(
      const Checkpoint* checkpoint, const std::vector<wal::LogRecord>& suffix,
      std::size_t suffix_base_lsn, wal::DurableLog* durable);

  /// Order-independent fingerprint of the materialized state at the
  /// visibility watermark. Unlike StateHash (a fold over commit history,
  /// which a checkpoint restart cannot reproduce), two sites holding the
  /// same key-value content hash equal regardless of how they got there.
  std::uint64_t ContentHash() const;

  /// Installs a hook invoked for every update-transaction commit *under the
  /// timestamp mutex*, before the commit's versions become visible (the
  /// visibility watermark passes the commit timestamp only after the hook
  /// has run and installation finished). The replication layer uses this to
  /// publish the local-to-primary commit timestamp translation before any
  /// reader can observe the new versions.
  void SetCommitHook(std::function<void(TxnId, Timestamp)> hook) {
    commit_hook_ = std::move(hook);
  }

  /// Closes the logical log; tailing propagators drain and stop.
  void Close();

 private:
  // txn::TxnObserver — wired into the TxnManager so the log sees every
  // update-transaction lifecycle event in timestamp order.
  void OnStart(TxnId txn_id, Timestamp start_ts) override;
  void OnUpdate(TxnId txn_id, const std::string& key, const std::string& value,
                bool deleted) override;
  void OnCommit(TxnId txn_id, Timestamp commit_ts,
                const storage::WriteSet& writes) override;
  void OnAbort(TxnId txn_id) override;

  /// Appends to the in-memory log and, when a durable mirror is attached,
  /// queues the record there under the same LSN (the pair is serialized so
  /// the mirror receives LSNs in order). Registers commit records for the
  /// durability gate.
  void AppendLogRecord(wal::LogRecord record, Timestamp commit_ts);

  /// TxnManager durability gate: waits until this commit's log record is
  /// below the durable flushed-LSN watermark.
  Status DurabilityGate(Timestamp commit_ts);

  DatabaseOptions options_;
  storage::VersionedStore store_;
  wal::LogicalLog log_;
  txn::TxnManager txn_manager_;
  std::function<void(TxnId, Timestamp)> commit_hook_;

  wal::DurableLog* durable_ = nullptr;  // not owned
  std::mutex dur_mu_;  // orders mirror appends; guards commit_lsns_
  std::map<Timestamp, std::uint64_t> commit_lsns_;

  mutable std::mutex chain_mu_;
  StateChain chain_;
  std::vector<StateChainEntry> chain_history_;
};

}  // namespace engine
}  // namespace lazysi

#endif  // LAZYSI_ENGINE_DATABASE_H_
