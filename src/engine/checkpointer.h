#ifndef LAZYSI_ENGINE_CHECKPOINTER_H_
#define LAZYSI_ENGINE_CHECKPOINTER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/result.h"
#include "engine/database.h"
#include "engine/recovery.h"
#include "wal/durable_log.h"

namespace lazysi {
namespace engine {

/// The data-dir manifest: which checkpoint file (if any) is current, and the
/// log position recovery resumes replay from. Written durably (temp file +
/// fsync + rename + directory fsync), so after any crash the manifest names
/// either the old checkpoint or the new one, both fully on disk.
struct Manifest {
  std::uint64_t checkpoint_lsn = 0;
  std::string checkpoint_file;  // relative to the data dir; empty = none
};

Status WriteManifest(const std::string& data_dir, const Manifest& manifest);
/// NotFound when no manifest exists yet (fresh data dir).
Result<Manifest> LoadManifest(const std::string& data_dir);

/// Periodic checkpointing with changelog truncation (Section 3.4's "replay
/// the suffix of the log after the checkpoint", made bounded):
///
///   1. Database::TakeCheckpoint() — a consistent (state, LSN) pair at the
///      visibility watermark; non-quiescent, commits keep flowing.
///   2. DurableLog::Flush(lsn) — every record the checkpoint covers must be
///      on disk before anything references the checkpoint.
///   3. SaveCheckpoint + WriteManifest (both durable), drop the previous
///      checkpoint file.
///   4. Truncate log segments below floor = min(checkpoint LSN, the
///      propagation sinks' min-ack LSN from `log_floor`) — a secondary that
///      has not acked past the floor still needs those records for resync.
///   5. Mirror the truncation into the in-memory LogicalLog, which bounds
///      its memory to the live suffix.
class Checkpointer {
 public:
  struct Options {
    std::string data_dir;
    /// Cadence of the background thread; <= 0 means manual only
    /// (CheckpointNow).
    std::chrono::milliseconds interval{0};
    /// Lower bound on the truncation floor from the propagation side (min
    /// sink ack LSN); null means the checkpoint LSN alone is the floor.
    std::function<std::uint64_t()> log_floor;
  };

  Checkpointer(Database* db, wal::DurableLog* durable, Options options);
  ~Checkpointer();

  void Start();
  void Stop();

  /// One full checkpoint-and-truncate cycle (steps 1-5 above).
  Status CheckpointNow();

  std::uint64_t checkpoint_count() const {
    return checkpoint_count_.load(std::memory_order_relaxed);
  }
  std::uint64_t last_checkpoint_lsn() const {
    return last_checkpoint_lsn_.load(std::memory_order_relaxed);
  }

 private:
  void Loop();

  Database* db_;
  wal::DurableLog* durable_;
  Options options_;

  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool started_ = false;
  std::thread thread_;
  std::string current_checkpoint_file_;  // relative; tracked for unlinking

  std::atomic<std::uint64_t> checkpoint_count_{0};
  std::atomic<std::uint64_t> last_checkpoint_lsn_{0};
};

/// Everything OpenDataDir recovered, handed to the caller for propagator
/// seeding; the DurableLog stays attached to the database for mirroring.
struct DataDirState {
  std::unique_ptr<wal::DurableLog> durable;
  Database::RestoreReport report;
  std::uint64_t base_lsn = 0;         // oldest retained LSN
  std::uint64_t base_record_seq = 0;  // propagation seq at base_lsn
  bool had_state = false;  // false: fresh data dir, nothing restored
  bool tail_truncated = false;  // a torn tail was dropped on open
};

/// Opens (creating if needed) a primary data directory: durable log under
/// `<data_dir>/wal`, checkpoint + MANIFEST at the top level. Restores `db`
/// (which must be fresh) from the manifest checkpoint plus the bounded log
/// suffix, then attaches the durable log so new commits are mirrored and
/// gated on the flushed watermark.
Result<DataDirState> OpenDataDir(Database* db, const std::string& data_dir,
                                 wal::DurableLog::Options log_options);

}  // namespace engine
}  // namespace lazysi

#endif  // LAZYSI_ENGINE_CHECKPOINTER_H_
