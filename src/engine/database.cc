#include "engine/database.h"

#include <thread>

#include "common/logging.h"

namespace lazysi {
namespace engine {

Database::Database(DatabaseOptions options)
    : options_(std::move(options)),
      store_(options_.store_shards),
      txn_manager_(&store_, this) {}

Database::~Database() { Close(); }

std::unique_ptr<txn::Transaction> Database::Begin(bool read_only) {
  return txn_manager_.Begin(read_only);
}

Result<std::string> Database::Get(const std::string& key) {
  auto t = Begin(/*read_only=*/true);
  auto value = t->Get(key);
  t->Commit().ok();  // read-only commit cannot fail
  return value;
}

Status Database::Put(const std::string& key, std::string value) {
  auto t = Begin();
  LAZYSI_RETURN_NOT_OK(t->Put(key, std::move(value)));
  return t->Commit();
}

Status Database::Delete(const std::string& key) {
  auto t = Begin();
  LAZYSI_RETURN_NOT_OK(t->Delete(key));
  return t->Commit();
}

std::uint64_t Database::StateHash() const {
  std::lock_guard<std::mutex> lock(chain_mu_);
  return chain_.value();
}

std::vector<StateChainEntry> Database::StateChainHistory() const {
  std::lock_guard<std::mutex> lock(chain_mu_);
  return chain_history_;
}

Database::Checkpoint Database::TakeCheckpoint() const {
  Checkpoint cp;
  // The pipelined commit emits the log record before installing versions, so
  // `log_.Size()` alone may count commits the watermark has not yet passed.
  // Sample (as_of, lsn) until the pipeline is momentarily drained with the
  // watermark unchanged across the sample: then every commit record below
  // `lsn` has timestamp <= `as_of` and is materialized, and every commit
  // <= `as_of` has its record below `lsn` (records are emitted before
  // publication).
  for (;;) {
    cp.as_of = txn_manager_.LatestCommitTs();
    cp.lsn = log_.Size();
    if (txn_manager_.AllCommitsVisible() &&
        txn_manager_.LatestCommitTs() == cp.as_of) {
      break;
    }
    std::this_thread::yield();
  }
  cp.state = store_.Materialize(cp.as_of);
  return cp;
}

Result<Timestamp> Database::InstallCheckpoint(const Checkpoint& checkpoint) {
  auto t = Begin();
  for (const auto& [key, value] : checkpoint.state) {
    LAZYSI_RETURN_NOT_OK(t->Put(key, value));
  }
  LAZYSI_RETURN_NOT_OK(t->Commit());
  return t->commit_ts();
}

void Database::Close() { log_.Close(); }

void Database::OnStart(TxnId txn_id, Timestamp start_ts) {
  log_.Append(wal::LogRecord::Start(txn_id, start_ts));
}

void Database::OnUpdate(TxnId txn_id, const std::string& key,
                        const std::string& value, bool deleted) {
  log_.Append(wal::LogRecord::Update(txn_id, key, value, deleted));
}

void Database::OnCommit(TxnId txn_id, Timestamp commit_ts,
                        const storage::WriteSet& writes) {
  log_.Append(wal::LogRecord::Commit(txn_id, commit_ts));
  if (commit_hook_) commit_hook_(txn_id, commit_ts);
  std::lock_guard<std::mutex> lock(chain_mu_);
  for (const auto& [key, w] : writes.entries()) {
    chain_.FoldWrite(key, w.value, w.deleted);
  }
  chain_.SealTransaction();
  if (options_.record_state_chain) {
    chain_history_.push_back(StateChainEntry{commit_ts, chain_.value()});
  }
}

void Database::OnAbort(TxnId txn_id) {
  log_.Append(wal::LogRecord::Abort(txn_id));
}

}  // namespace engine
}  // namespace lazysi
