#include "engine/database.h"

#include <thread>

#include "common/logging.h"

namespace lazysi {
namespace engine {

Database::Database(DatabaseOptions options)
    : options_(std::move(options)),
      store_(options_.store_shards),
      txn_manager_(&store_, this) {}

Database::~Database() { Close(); }

std::unique_ptr<txn::Transaction> Database::Begin(bool read_only) {
  return txn_manager_.Begin(read_only);
}

Result<std::string> Database::Get(const std::string& key) {
  auto t = Begin(/*read_only=*/true);
  auto value = t->Get(key);
  t->Commit().ok();  // read-only commit cannot fail
  return value;
}

Status Database::Put(const std::string& key, std::string value) {
  auto t = Begin();
  LAZYSI_RETURN_NOT_OK(t->Put(key, std::move(value)));
  return t->Commit();
}

Status Database::Delete(const std::string& key) {
  auto t = Begin();
  LAZYSI_RETURN_NOT_OK(t->Delete(key));
  return t->Commit();
}

std::uint64_t Database::StateHash() const {
  std::lock_guard<std::mutex> lock(chain_mu_);
  return chain_.value();
}

std::vector<StateChainEntry> Database::StateChainHistory() const {
  std::lock_guard<std::mutex> lock(chain_mu_);
  return chain_history_;
}

Database::Checkpoint Database::TakeCheckpoint() const {
  Checkpoint cp;
  // The pipelined commit emits the log record before installing versions, so
  // `log_.Size()` alone may count commits the watermark has not yet passed.
  // Sample (as_of, lsn) until the pipeline is momentarily drained with the
  // watermark unchanged across the sample: then every commit record below
  // `lsn` has timestamp <= `as_of` and is materialized, and every commit
  // <= `as_of` has its record below `lsn` (records are emitted before
  // publication).
  for (;;) {
    cp.as_of = txn_manager_.LatestCommitTs();
    cp.lsn = log_.Size();
    if (txn_manager_.AllCommitsVisible() &&
        txn_manager_.LatestCommitTs() == cp.as_of) {
      break;
    }
    std::this_thread::yield();
  }
  cp.state = store_.Materialize(cp.as_of);
  return cp;
}

Result<Timestamp> Database::InstallCheckpoint(const Checkpoint& checkpoint) {
  auto t = Begin();
  for (const auto& [key, value] : checkpoint.state) {
    LAZYSI_RETURN_NOT_OK(t->Put(key, value));
  }
  LAZYSI_RETURN_NOT_OK(t->Commit());
  return t->commit_ts();
}

void Database::Close() { log_.Close(); }

void Database::AttachDurableLog(wal::DurableLog* durable) {
  durable_ = durable;
  txn_manager_.SetDurabilityGate(
      [this](Timestamp commit_ts) { return DurabilityGate(commit_ts); });
}

void Database::AppendLogRecord(wal::LogRecord record, Timestamp commit_ts) {
  if (durable_ == nullptr) {
    log_.Append(std::move(record));
    return;
  }
  // The pair (memory append, mirror append) is serialized: update records
  // are emitted outside the timestamp mutex, so without this the mirror
  // could see LSNs out of order.
  std::lock_guard<std::mutex> lock(dur_mu_);
  const std::size_t lsn = log_.Append(record);
  if (commit_ts != kInvalidTimestamp) commit_lsns_[commit_ts] = lsn;
  durable_->Append(lsn, record);
}

Status Database::DurabilityGate(Timestamp commit_ts) {
  if (durable_ == nullptr) return Status::OK();
  std::uint64_t lsn;
  {
    std::lock_guard<std::mutex> lock(dur_mu_);
    auto it = commit_lsns_.find(commit_ts);
    if (it == commit_lsns_.end()) return Status::OK();
    lsn = it->second;
    commit_lsns_.erase(it);
  }
  return durable_->WaitDurable(lsn + 1);
}

std::uint64_t Database::ContentHash() const {
  const auto state = store_.Materialize(txn_manager_.LatestCommitTs());
  std::uint64_t h = 0;
  for (const auto& [key, value] : state) {
    h = HashMix(h, Fnv1a64(key));
    h = HashMix(h, Fnv1a64(value));
  }
  return h;
}

Result<Database::RestoreReport> Database::RestoreFromDurable(
    const Checkpoint* checkpoint, const std::vector<wal::LogRecord>& suffix,
    std::size_t suffix_base_lsn, wal::DurableLog* durable) {
  if (log_.Size() != 0 || LatestCommitTs() != kInvalidTimestamp) {
    return Status::FailedPrecondition(
        "RestoreFromDurable requires a fresh database");
  }
  RestoreReport report;
  Timestamp as_of = kInvalidTimestamp;
  if (checkpoint != nullptr) {
    if (checkpoint->lsn < suffix_base_lsn) {
      return Status::InvalidArgument(
          "checkpoint LSN below the retained log suffix");
    }
    as_of = checkpoint->as_of;
    // Install the checkpoint state directly at its original timestamp —
    // InstallCheckpoint would allocate a fresh one, and recovery must not
    // renumber primary-visible timestamps.
    if (!checkpoint->state.empty()) {
      storage::WriteSet base;
      for (const auto& [key, value] : checkpoint->state) {
        base.Put(key, value);
      }
      store_.Apply(base, as_of);
    }
  }
  log_.ResetBase(suffix_base_lsn);

  std::map<TxnId, storage::WriteSet> updates;
  std::map<TxnId, Timestamp> open_starts;
  Timestamp max_ts = as_of;
  Timestamp max_commit = as_of;
  TxnId max_txn = 0;
  for (const auto& rec : suffix) {
    log_.Append(rec);
    ++report.records_replayed;
    if (rec.txn_id > max_txn) max_txn = rec.txn_id;
    switch (rec.type) {
      case wal::LogRecordType::kStart:
        open_starts[rec.txn_id] = rec.timestamp;
        max_ts = std::max(max_ts, rec.timestamp);
        break;
      case wal::LogRecordType::kUpdate: {
        auto& ws = updates[rec.txn_id];
        if (rec.deleted) {
          ws.Delete(rec.key);
        } else {
          ws.Put(rec.key, rec.value);
        }
        break;
      }
      case wal::LogRecordType::kCommit: {
        max_ts = std::max(max_ts, rec.timestamp);
        max_commit = std::max(max_commit, rec.timestamp);
        auto it = updates.find(rec.txn_id);
        if (rec.timestamp > as_of || as_of == kInvalidTimestamp) {
          // Not covered by the checkpoint: apply at the logged timestamp.
          // (TakeCheckpoint's consistent (state, LSN) pair guarantees
          // commit records below the checkpoint LSN have ts <= as_of.)
          if (it != updates.end() && !it->second.empty()) {
            store_.Apply(it->second, rec.timestamp);
          }
          {
            std::lock_guard<std::mutex> lock(chain_mu_);
            if (it != updates.end()) {
              for (const auto& [key, w] : it->second.entries()) {
                chain_.FoldWrite(key, w.value, w.deleted);
              }
            }
            chain_.SealTransaction();
            if (options_.record_state_chain) {
              chain_history_.push_back(
                  StateChainEntry{rec.timestamp, chain_.value()});
            }
          }
          ++report.commits_applied;
        }
        if (it != updates.end()) updates.erase(it);
        open_starts.erase(rec.txn_id);
        break;
      }
      case wal::LogRecordType::kAbort:
        updates.erase(rec.txn_id);
        open_starts.erase(rec.txn_id);
        break;
    }
  }
  // Transactions the crash caught mid-flight can never commit (their client
  // connections died with the process): resolve them with synthetic abort
  // records — in memory *and* on disk — so propagation update lists and
  // segment-rotation quiescence converge.
  for (const auto& [txn_id, start_ts] : open_starts) {
    (void)start_ts;
    wal::LogRecord abort_rec = wal::LogRecord::Abort(txn_id);
    const std::size_t lsn = log_.Append(abort_rec);
    if (durable != nullptr) durable->Append(lsn, abort_rec);
    ++report.unresolved_aborted;
  }
  const Timestamp clock = max_ts == kInvalidTimestamp ? 0 : max_ts;
  const Timestamp visible = max_commit == kInvalidTimestamp ? 0 : max_commit;
  txn_manager_.ResetForRecovery(clock, visible, max_txn + 1);
  report.restored_visible = visible;
  return report;
}

void Database::OnStart(TxnId txn_id, Timestamp start_ts) {
  AppendLogRecord(wal::LogRecord::Start(txn_id, start_ts), kInvalidTimestamp);
}

void Database::OnUpdate(TxnId txn_id, const std::string& key,
                        const std::string& value, bool deleted) {
  AppendLogRecord(wal::LogRecord::Update(txn_id, key, value, deleted),
                  kInvalidTimestamp);
}

void Database::OnCommit(TxnId txn_id, Timestamp commit_ts,
                        const storage::WriteSet& writes) {
  AppendLogRecord(wal::LogRecord::Commit(txn_id, commit_ts), commit_ts);
  if (commit_hook_) commit_hook_(txn_id, commit_ts);
  std::lock_guard<std::mutex> lock(chain_mu_);
  for (const auto& [key, w] : writes.entries()) {
    chain_.FoldWrite(key, w.value, w.deleted);
  }
  chain_.SealTransaction();
  if (options_.record_state_chain) {
    chain_history_.push_back(StateChainEntry{commit_ts, chain_.value()});
  }
}

void Database::OnAbort(TxnId txn_id) {
  AppendLogRecord(wal::LogRecord::Abort(txn_id), kInvalidTimestamp);
}

}  // namespace engine
}  // namespace lazysi
