#ifndef LAZYSI_SIM_SIMULATOR_H_
#define LAZYSI_SIM_SIMULATOR_H_

#include <coroutine>
#include <cstdint>
#include <exception>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

namespace lazysi {
namespace sim {

/// Virtual time, in seconds.
using SimTime = double;

class Simulator;

/// A fire-and-forget simulation process, written as a C++20 coroutine:
///
///   sim::Process Client(sim::Simulator& sim, Model& m) {
///     for (;;) {
///       co_await sim.Delay(m.rng.Exponential(think_time));
///       co_await m.server.Use(demand);
///     }
///   }
///
/// Processes are started with Simulator::Spawn and owned by the simulator;
/// frames self-destroy on completion and any still-suspended frames are
/// destroyed with the simulator. This plays the role of CSIM18's
/// process-oriented modelling layer (Section 5 of the paper used CSIM).
class Process {
 public:
  struct promise_type;
  using Handle = std::coroutine_handle<promise_type>;

  struct promise_type {
    Simulator* sim = nullptr;

    Process get_return_object() {
      return Process{Handle::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() noexcept { return false; }
      void await_suspend(Handle h) noexcept;
      void await_resume() noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { std::terminate(); }
  };

  explicit Process(Handle handle) : handle_(handle) {}
  Handle handle() const { return handle_; }

 private:
  Handle handle_;
};

/// Event-driven simulation core: a virtual clock and a time-ordered queue of
/// coroutine resumptions and callbacks. Deterministic: ties in time are
/// broken by scheduling order.
class Simulator {
 public:
  Simulator() = default;
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime Now() const { return now_; }

  /// Starts a process; its body runs when the event loop reaches the
  /// current time.
  void Spawn(Process process);

  /// Schedules a coroutine resumption at absolute time `at` (>= Now()).
  void Schedule(SimTime at, std::coroutine_handle<> h);

  /// Schedules a callback; returns an id usable with CancelCallback.
  std::uint64_t ScheduleCallback(SimTime at, std::function<void()> fn);
  void CancelCallback(std::uint64_t id);

  /// Awaitable that suspends the calling process for `delay` virtual
  /// seconds.
  auto Delay(SimTime delay) {
    struct Awaiter {
      Simulator* sim;
      SimTime delay;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        sim->Schedule(sim->Now() + (delay > 0 ? delay : 0), h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, delay};
  }

  /// Runs until the event queue is empty.
  void Run();
  /// Runs all events with time <= until, then sets the clock to `until`.
  void RunUntil(SimTime until);

  std::uint64_t events_processed() const { return events_processed_; }

 private:
  friend struct Process::promise_type;

  struct Event {
    SimTime time;
    std::uint64_t seq;  // FIFO tie-break
    std::coroutine_handle<> handle;
    std::function<void()> fn;
    std::uint64_t callback_id;  // 0 for coroutine events
  };
  struct EventCompare {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void DispatchOne(Event event);
  void OnProcessFinished(Process::Handle h);

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_callback_id_ = 1;
  std::uint64_t events_processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventCompare> events_;
  std::unordered_set<std::uint64_t> cancelled_;
  std::unordered_set<void*> alive_processes_;
};

}  // namespace sim
}  // namespace lazysi

#endif  // LAZYSI_SIM_SIMULATOR_H_
