#ifndef LAZYSI_SIM_CONDITION_H_
#define LAZYSI_SIM_CONDITION_H_

#include <coroutine>
#include <deque>

#include "sim/simulator.h"

namespace lazysi {
namespace sim {

/// CSIM-style broadcast condition: processes wait, someone notifies, all
/// waiters are rescheduled at the current time. Use in a predicate loop:
///
///   while (seq_db < seq_c) co_await cond.Wait();
///
/// This is how the simulation model implements the seq(DBsec) >= seq(c)
/// blocking rule of ALG-STRONG-SESSION-SI.
class Condition {
 public:
  explicit Condition(Simulator* sim) : sim_(sim) {}

  Condition(const Condition&) = delete;
  Condition& operator=(const Condition&) = delete;

  auto Wait() {
    struct Awaiter {
      Condition* cond;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        cond->waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

  /// Wakes every current waiter (at the present virtual time).
  void NotifyAll() {
    while (!waiters_.empty()) {
      sim_->Schedule(sim_->Now(), waiters_.front());
      waiters_.pop_front();
    }
  }

  std::size_t num_waiters() const { return waiters_.size(); }

 private:
  Simulator* sim_;
  std::deque<std::coroutine_handle<>> waiters_;
};

}  // namespace sim
}  // namespace lazysi

#endif  // LAZYSI_SIM_CONDITION_H_
