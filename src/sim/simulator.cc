#include "sim/simulator.h"

#include <cassert>

namespace lazysi {
namespace sim {

void Process::promise_type::FinalAwaiter::await_suspend(Handle h) noexcept {
  // Unregister and destroy the frame. Destroying a coroutine suspended at
  // its final suspend point is well-defined; after this the simulator holds
  // no reference to it.
  Simulator* sim = h.promise().sim;
  if (sim != nullptr) {
    sim->alive_processes_.erase(h.address());
  }
  h.destroy();
}

Simulator::~Simulator() {
  // Destroy still-suspended processes. Copy first: frame destructors do not
  // touch the registry (only FinalAwaiter does, and destroyed frames never
  // reach it), but keep the iteration safe regardless.
  std::vector<void*> leftover(alive_processes_.begin(),
                              alive_processes_.end());
  alive_processes_.clear();
  for (void* address : leftover) {
    Process::Handle::from_address(address).destroy();
  }
}

void Simulator::Spawn(Process process) {
  Process::Handle h = process.handle();
  h.promise().sim = this;
  alive_processes_.insert(h.address());
  Schedule(now_, h);
}

void Simulator::Schedule(SimTime at, std::coroutine_handle<> h) {
  assert(at >= now_);
  events_.push(Event{at, next_seq_++, h, nullptr, 0});
}

std::uint64_t Simulator::ScheduleCallback(SimTime at,
                                          std::function<void()> fn) {
  assert(at >= now_);
  const std::uint64_t id = next_callback_id_++;
  events_.push(Event{at, next_seq_++, nullptr, std::move(fn), id});
  return id;
}

void Simulator::CancelCallback(std::uint64_t id) { cancelled_.insert(id); }

void Simulator::DispatchOne(Event event) {
  now_ = event.time;
  ++events_processed_;
  if (event.handle) {
    event.handle.resume();
  } else if (event.fn) {
    event.fn();
  }
}

void Simulator::Run() {
  while (!events_.empty()) {
    Event event = events_.top();
    events_.pop();
    if (event.callback_id != 0 && cancelled_.erase(event.callback_id) > 0) {
      continue;
    }
    DispatchOne(std::move(event));
  }
}

void Simulator::RunUntil(SimTime until) {
  while (!events_.empty() && events_.top().time <= until) {
    Event event = events_.top();
    events_.pop();
    if (event.callback_id != 0 && cancelled_.erase(event.callback_id) > 0) {
      continue;
    }
    DispatchOne(std::move(event));
  }
  now_ = until;
}

}  // namespace sim
}  // namespace lazysi
