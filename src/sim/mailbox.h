#ifndef LAZYSI_SIM_MAILBOX_H_
#define LAZYSI_SIM_MAILBOX_H_

#include <coroutine>
#include <deque>
#include <optional>
#include <utility>

#include "sim/simulator.h"

namespace lazysi {
namespace sim {

/// CSIM-style mailbox: an unbounded FIFO channel between simulation
/// processes. Send never blocks; Receive suspends until a value arrives.
/// Values are handed directly to parked receivers, so delivery order is
/// exactly send order. The simulated secondaries' update queues are
/// mailboxes of propagation records.
template <typename T>
class Mailbox {
 public:
  explicit Mailbox(Simulator* sim) : sim_(sim) {}

  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  void Send(T value) {
    if (!waiters_.empty()) {
      ReceiveAwaiter* waiter = waiters_.front();
      waiters_.pop_front();
      waiter->value.emplace(std::move(value));
      sim_->Schedule(sim_->Now(), waiter->handle);
    } else {
      values_.push_back(std::move(value));
    }
  }

  struct ReceiveAwaiter {
    Mailbox* mailbox;
    std::optional<T> value;
    std::coroutine_handle<> handle;

    bool await_ready() {
      if (!mailbox->values_.empty()) {
        value.emplace(std::move(mailbox->values_.front()));
        mailbox->values_.pop_front();
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      handle = h;
      mailbox->waiters_.push_back(this);
    }
    T await_resume() { return std::move(*value); }
  };

  /// co_await mailbox.Receive() -> T
  ReceiveAwaiter Receive() { return ReceiveAwaiter{this, std::nullopt, {}}; }

  std::size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

 private:
  Simulator* sim_;
  std::deque<T> values_;
  std::deque<ReceiveAwaiter*> waiters_;
};

}  // namespace sim
}  // namespace lazysi

#endif  // LAZYSI_SIM_MAILBOX_H_
