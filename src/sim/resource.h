#ifndef LAZYSI_SIM_RESOURCE_H_
#define LAZYSI_SIM_RESOURCE_H_

#include <coroutine>
#include <list>
#include <string>

#include "sim/simulator.h"

namespace lazysi {
namespace sim {

/// A shared server resource, the simulator's model of a site's CPU.
///
/// The paper's model serves each site with "a shared resource with a
/// round-robin queueing scheme having a time slice of 0.001 seconds"
/// (Section 5). Three disciplines are provided:
///
///  - kProcessorSharing (default): the analytic limit of round-robin as the
///    slice goes to zero. Since the paper's slice (1 ms) is 20x smaller than
///    one operation's service demand (20 ms), round-robin and PS produce the
///    same queueing behaviour; PS needs O(1) events per job instead of one
///    per slice, which is what makes 35-simulated-minute runs with dozens of
///    sites tractable. (DESIGN.md documents this substitution; a test
///    checks RR -> PS convergence.)
///  - kRoundRobin: the literal sliced discipline, for fidelity checks.
///  - kFifo: non-preemptive FIFO, for comparison experiments.
class Resource {
 public:
  enum class Discipline { kProcessorSharing, kFifo, kRoundRobin };

  Resource(Simulator* sim, std::string name,
           Discipline discipline = Discipline::kProcessorSharing,
           double quantum = 0.001);

  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;

  /// Awaitable: suspends the calling process until `demand` seconds of
  /// service have been delivered to it under the configured discipline.
  auto Use(double demand) {
    struct Awaiter {
      Resource* resource;
      double demand;
      bool await_ready() const noexcept { return demand <= 0; }
      void await_suspend(std::coroutine_handle<> h) {
        resource->Enter(demand, h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, demand};
  }

  const std::string& name() const { return name_; }
  std::size_t active_jobs() const { return jobs_.size(); }
  std::size_t completed() const { return completed_; }
  double demand_served() const { return demand_served_; }

  /// Fraction of time the server was busy since construction (or the last
  /// ResetStats).
  double Utilization() const;
  /// Time-averaged number of jobs present.
  double MeanJobs() const;
  void ResetStats();

 private:
  struct Job {
    double remaining;
    std::coroutine_handle<> handle;
  };

  void Enter(double demand, std::coroutine_handle<> h);
  /// Accrues busy/job-count integrals and (for PS) drains remaining work.
  void Advance();
  void ScheduleNextEvent();
  void OnEvent();

  Simulator* sim_;
  std::string name_;
  Discipline discipline_;
  double quantum_;

  std::list<Job> jobs_;
  SimTime last_advance_ = 0;
  SimTime slice_start_ = 0;  // kRoundRobin / kFifo: service start of head
  std::uint64_t pending_event_ = 0;

  // Statistics.
  SimTime stats_start_ = 0;
  double busy_integral_ = 0;
  double jobs_integral_ = 0;
  std::size_t completed_ = 0;
  double demand_served_ = 0;

  static constexpr double kEps = 1e-12;
};

}  // namespace sim
}  // namespace lazysi

#endif  // LAZYSI_SIM_RESOURCE_H_
