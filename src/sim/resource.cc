#include "sim/resource.h"

#include <algorithm>
#include <cassert>

namespace lazysi {
namespace sim {

Resource::Resource(Simulator* sim, std::string name, Discipline discipline,
                   double quantum)
    : sim_(sim), name_(std::move(name)), discipline_(discipline),
      quantum_(quantum), last_advance_(sim->Now()), stats_start_(sim->Now()) {}

void Resource::Enter(double demand, std::coroutine_handle<> h) {
  Advance();
  jobs_.push_back(Job{demand, h});
  if (discipline_ != Discipline::kProcessorSharing && jobs_.size() == 1) {
    slice_start_ = sim_->Now();
  }
  ScheduleNextEvent();
}

void Resource::Advance() {
  const SimTime now = sim_->Now();
  const double dt = now - last_advance_;
  last_advance_ = now;
  if (dt <= 0 || jobs_.empty()) return;
  busy_integral_ += dt;
  jobs_integral_ += dt * static_cast<double>(jobs_.size());
  if (discipline_ == Discipline::kProcessorSharing) {
    const double share = dt / static_cast<double>(jobs_.size());
    for (Job& job : jobs_) {
      job.remaining = std::max(0.0, job.remaining - share);
      demand_served_ += share;
    }
  }
  // FIFO / RR drain their head job's remaining work in OnEvent, where the
  // served slice length is known exactly.
}

void Resource::ScheduleNextEvent() {
  if (pending_event_ != 0) {
    sim_->CancelCallback(pending_event_);
    pending_event_ = 0;
  }
  if (jobs_.empty()) return;
  SimTime at = sim_->Now();
  switch (discipline_) {
    case Discipline::kProcessorSharing: {
      double min_remaining = jobs_.front().remaining;
      for (const Job& job : jobs_) {
        min_remaining = std::min(min_remaining, job.remaining);
      }
      at += std::max(0.0, min_remaining) * static_cast<double>(jobs_.size());
      break;
    }
    case Discipline::kFifo:
      at = slice_start_ + jobs_.front().remaining;
      break;
    case Discipline::kRoundRobin:
      at = slice_start_ + std::min(quantum_, jobs_.front().remaining);
      break;
  }
  at = std::max(at, sim_->Now());
  pending_event_ = sim_->ScheduleCallback(at, [this] { OnEvent(); });
}

void Resource::OnEvent() {
  pending_event_ = 0;
  Advance();
  const SimTime now = sim_->Now();
  switch (discipline_) {
    case Discipline::kProcessorSharing: {
      for (auto it = jobs_.begin(); it != jobs_.end();) {
        if (it->remaining <= kEps) {
          sim_->Schedule(now, it->handle);
          ++completed_;
          it = jobs_.erase(it);
        } else {
          ++it;
        }
      }
      break;
    }
    case Discipline::kFifo: {
      assert(!jobs_.empty());
      Job head = jobs_.front();
      jobs_.pop_front();
      demand_served_ += head.remaining;
      sim_->Schedule(now, head.handle);
      ++completed_;
      slice_start_ = now;
      break;
    }
    case Discipline::kRoundRobin: {
      assert(!jobs_.empty());
      const double served = now - slice_start_;
      Job head = jobs_.front();
      jobs_.pop_front();
      head.remaining -= served;
      demand_served_ += served;
      if (head.remaining <= kEps) {
        sim_->Schedule(now, head.handle);
        ++completed_;
      } else {
        jobs_.push_back(head);  // rotate to the tail
      }
      slice_start_ = now;
      break;
    }
  }
  ScheduleNextEvent();
}

double Resource::Utilization() const {
  const double elapsed = sim_->Now() - stats_start_;
  if (elapsed <= 0) return 0.0;
  // busy_integral_ lags by the un-advanced tail; good enough for reporting.
  return std::min(1.0, busy_integral_ / elapsed);
}

double Resource::MeanJobs() const {
  const double elapsed = sim_->Now() - stats_start_;
  if (elapsed <= 0) return 0.0;
  return jobs_integral_ / elapsed;
}

void Resource::ResetStats() {
  stats_start_ = sim_->Now();
  busy_integral_ = 0;
  jobs_integral_ = 0;
  completed_ = 0;
  demand_served_ = 0;
}

}  // namespace sim
}  // namespace lazysi
