// OLAP offloading: the scale-out use case the paper motivates (Section 1,
// "e-commerce and OLAP-based applications"). A stream of OLTP writers
// updates account balances at the primary while analytic readers run long
// consistent scans at the secondaries — reads are never blocked by writers
// (SI), never see torn totals (snapshot consistency), and the secondaries'
// freshness lag is observable.
//
//   $ ./build/examples/analytics

#include <atomic>
#include <cstdio>
#include <thread>

#include "common/random.h"
#include "system/replicated_system.h"

using namespace lazysi;
using system::ReplicatedSystem;
using system::SystemConfig;
using system::SystemTransaction;

namespace {
constexpr int kAccounts = 64;
constexpr long kTotalMoney = 64000;  // invariant: sum of balances
}  // namespace

int main() {
  SystemConfig config;
  config.num_secondaries = 2;
  config.guarantee = session::Guarantee::kStrongSessionSI;
  config.propagation_batch_interval = std::chrono::milliseconds(20);
  ReplicatedSystem sys(config);
  sys.Start();

  // Seed the chart of accounts: total is kTotalMoney forever after, because
  // every transfer is balance-preserving.
  auto seeder = sys.Connect();
  Status s = seeder->ExecuteUpdate([&](SystemTransaction& t) {
    for (int a = 0; a < kAccounts; ++a) {
      char key[32];
      std::snprintf(key, sizeof(key), "acct/%04d", a);
      LAZYSI_RETURN_NOT_OK(t.Put(key, std::to_string(kTotalMoney / kAccounts)));
    }
    return Status::OK();
  });
  if (!s.ok()) {
    std::printf("seed failed: %s\n", s.ToString().c_str());
    return 1;
  }

  std::atomic<bool> stop{false};
  std::atomic<long> transfers{0};

  // OLTP: concurrent transfer writers (forwarded to the primary).
  std::vector<std::thread> writers;
  for (int w = 0; w < 3; ++w) {
    writers.emplace_back([&, w] {
      Rng rng(100 + w);
      auto conn = sys.Connect();
      while (!stop) {
        const int from = static_cast<int>(rng.Next(kAccounts));
        const int to = static_cast<int>(rng.Next(kAccounts));
        if (from == to) continue;
        const long amount = 1 + static_cast<long>(rng.Next(20));
        Status st = conn->ExecuteUpdate(
            [&](SystemTransaction& t) -> Status {
              char kf[32], kt[32];
              std::snprintf(kf, sizeof(kf), "acct/%04d", from);
              std::snprintf(kt, sizeof(kt), "acct/%04d", to);
              auto bf = t.Get(kf);
              auto bt = t.Get(kt);
              if (!bf.ok() || !bt.ok()) return Status::Internal("missing acct");
              const long f = std::stol(*bf), g = std::stol(*bt);
              if (f < amount) return Status::OK();  // insufficient funds
              LAZYSI_RETURN_NOT_OK(t.Put(kf, std::to_string(f - amount)));
              return t.Put(kt, std::to_string(g + amount));
            },
            /*max_attempts=*/50);
        if (st.ok()) ++transfers;
      }
    });
  }

  // OLAP: analytic scans at the secondaries. Each scan totals every account
  // balance inside one snapshot — the invariant must hold in every result.
  std::printf("%-8s %-14s %-12s %-10s\n", "scan#", "total", "consistent?",
              "transfers so far");
  auto analyst = sys.Connect();
  for (int scan = 1; scan <= 8; ++scan) {
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
    long total = 0;
    std::size_t rows = 0;
    Status st = analyst->ExecuteRead([&](SystemTransaction& t) -> Status {
      auto all = t.Scan("acct/", "acct0");
      if (!all.ok()) return all.status();
      rows = all->size();
      for (const auto& [key, value] : *all) total += std::stol(value);
      return Status::OK();
    });
    if (!st.ok()) {
      std::printf("scan failed: %s\n", st.ToString().c_str());
      continue;
    }
    std::printf("%-8d %-14ld %-12s %-10ld\n", scan, total,
                (total == kTotalMoney && rows == kAccounts) ? "yes"
                                                            : "NO (BUG!)",
                transfers.load());
  }

  stop = true;
  for (auto& t : writers) t.join();
  sys.WaitForReplication();

  // Freshness diagnostics: how far each secondary lagged the primary.
  std::printf("\nprimary committed %llu update txns; secondaries applied:\n",
              static_cast<unsigned long long>(
                  sys.primary_db()->txn_manager()->CommittedCount()));
  for (std::size_t i = 0; i < sys.num_secondaries(); ++i) {
    std::printf("  secondary %zu: %llu refresh txns, seq(DBsec)=%llu\n", i,
                static_cast<unsigned long long>(
                    sys.secondary(i)->refreshed_count()),
                static_cast<unsigned long long>(
                    sys.secondary(i)->applied_seq()));
  }
  sys.Stop();
  return 0;
}
