// Time travel and durable restart: two capabilities the MVCC engine gives
// beyond the paper's core protocol (its related work builds exactly these on
// SI engines — transaction-time support and "searching in time").
//
//   - read any historical snapshot through version chains;
//   - prune old versions under a retention horizon;
//   - checkpoint + log-replay restart of a site (engine/recovery.h).
//
//   $ ./build/examples/timetravel

#include <cstdio>

#include "engine/database.h"
#include "engine/recovery.h"
#include "wal/log_file.h"

using namespace lazysi;

int main() {
  engine::Database db;

  // Build some history: a document edited over time.
  std::vector<Timestamp> edits;
  const char* versions[] = {"draft", "draft v2", "reviewed", "published"};
  for (const char* text : versions) {
    if (!db.Put("doc/readme", text).ok()) return 1;
    edits.push_back(db.LatestCommitTs());
  }
  (void)db.Put("doc/other", "unrelated");

  std::printf("document history (%zu versions):\n", edits.size());
  for (std::size_t i = 0; i < edits.size(); ++i) {
    auto txn = db.BeginAtSnapshot(edits[i]);
    if (!txn.ok()) return 1;
    std::printf("  as of ts %llu: \"%s\"\n",
                static_cast<unsigned long long>(edits[i]),
                (*txn)->Get("doc/readme").ValueOr("?").c_str());
  }

  // Retention: prune everything older than the "reviewed" edit.
  const std::size_t dropped = db.store()->PruneVersions(edits[2]);
  std::printf("\npruned %zu shadowed versions below ts %llu\n", dropped,
              static_cast<unsigned long long>(edits[2]));
  auto old_read = db.BeginAtSnapshot(edits[0]);
  std::printf("  read at ts %llu now: %s\n",
              static_cast<unsigned long long>(edits[0]),
              (*old_read)->Get("doc/readme").status().ToString().c_str());
  auto kept_read = db.BeginAtSnapshot(edits[2]);
  std::printf("  read at ts %llu still: \"%s\"\n",
              static_cast<unsigned long long>(edits[2]),
              (*kept_read)->Get("doc/readme").ValueOr("?").c_str());

  // Durable restart: checkpoint now, keep editing, persist the log suffix,
  // then rebuild an identical database from the two files.
  const std::string dir = "/tmp/";
  const auto checkpoint = db.TakeCheckpoint();
  if (!engine::SaveCheckpoint(checkpoint, dir + "lazysi_demo.ckpt").ok()) {
    return 1;
  }
  (void)db.Put("doc/readme", "published, rev 2");
  (void)db.Put("doc/changelog", "added rev 2");
  if (!wal::LogFile::Write(*db.log(), dir + "lazysi_demo.log",
                           checkpoint.lsn).ok()) {
    return 1;
  }

  engine::Database restored;
  auto loaded = engine::LoadCheckpoint(dir + "lazysi_demo.ckpt");
  if (!loaded.ok() || !restored.InstallCheckpoint(*loaded).ok()) return 1;
  auto records = wal::LogFile::Read(dir + "lazysi_demo.log");
  if (!records.ok()) return 1;
  auto applied = engine::ReplayLog(&restored, *records);
  if (!applied.ok()) return 1;

  std::printf("\nrestart: checkpoint (%zu keys) + %zu replayed txns\n",
              loaded->state.size(), *applied);
  const bool identical =
      restored.store()->Materialize(restored.LatestCommitTs()) ==
      db.store()->Materialize(db.LatestCommitTs());
  std::printf("restored state identical to original: %s\n",
              identical ? "yes" : "NO (BUG!)");
  std::printf("  doc/readme = \"%s\"\n",
              restored.Get("doc/readme").ValueOr("?").c_str());
  std::remove((dir + "lazysi_demo.ckpt").c_str());
  std::remove((dir + "lazysi_demo.log").c_str());
  return identical ? 0 : 1;
}
