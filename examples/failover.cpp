// Secondary failure and recovery (Sections 3.4 and 4): crash a secondary
// under load, keep serving from the survivors, then recover it from a
// quiesced primary checkpoint — seq(DBsec) is re-seeded with the dummy-
// transaction technique so session guarantees hold immediately.
//
//   $ ./build/examples/failover

#include <cstdio>

#include "history/completeness.h"
#include "system/replicated_system.h"

using namespace lazysi;
using system::ReplicatedSystem;
using system::SystemConfig;
using system::SystemTransaction;

namespace {

void PutBatch(system::ClientConnection* conn, const std::string& prefix,
              int n) {
  for (int i = 0; i < n; ++i) {
    Status s = conn->ExecuteUpdate([&](SystemTransaction& t) {
      return t.Put(prefix + "/" + std::to_string(i), "v");
    });
    if (!s.ok()) std::printf("write failed: %s\n", s.ToString().c_str());
  }
}

}  // namespace

int main() {
  SystemConfig config;
  config.num_secondaries = 2;
  config.guarantee = session::Guarantee::kStrongSessionSI;
  ReplicatedSystem sys(config);
  sys.Start();

  auto ops = sys.ConnectTo(1);  // a client on the surviving secondary

  PutBatch(ops.get(), "before", 25);
  sys.WaitForReplication();
  std::printf("phase 1: 25 txns replicated to both secondaries "
              "(sec0 keys=%zu, sec1 keys=%zu)\n",
              sys.secondary_db(0)->store()->KeyCount(),
              sys.secondary_db(1)->store()->KeyCount());

  // --- Crash secondary 0. ---
  Status s = sys.FailSecondary(0);
  std::printf("phase 2: secondary 0 crashed (%s); its queued updates and "
              "refresh state are gone\n", s.ToString().c_str());

  auto stranded = sys.ConnectTo(0);
  auto read = stranded->BeginRead();
  std::printf("  client of secondary 0: BeginRead -> %s\n",
              read.ok() ? "OK (unexpected!)"
                        : read.status().ToString().c_str());

  PutBatch(ops.get(), "during", 25);
  sys.WaitForReplication();
  std::printf("  25 more txns committed; surviving secondary has %zu keys\n",
              sys.secondary_db(1)->store()->KeyCount());

  // --- Recover from a quiesced checkpoint. ---
  s = sys.RecoverSecondary(0);
  std::printf("phase 3: recovery -> %s\n", s.ToString().c_str());
  PutBatch(ops.get(), "after", 25);
  sys.WaitForReplication();

  const auto primary_state = sys.primary_db()->store()->Materialize(
      sys.primary_db()->LatestCommitTs());
  const auto recovered_state = sys.secondary_db(0)->store()->Materialize(
      sys.secondary_db(0)->LatestCommitTs());
  std::printf("  recovered secondary: %zu keys, identical to primary: %s\n",
              recovered_state.size(),
              recovered_state == primary_state ? "yes" : "NO (BUG!)");

  // Session reads on the recovered secondary work, with read-your-writes.
  auto fresh = sys.ConnectTo(0);
  s = fresh->ExecuteUpdate([](SystemTransaction& t) {
    return t.Put("postrecovery", "ok");
  });
  std::printf("  update via recovered secondary's client: %s\n",
              s.ToString().c_str());
  s = fresh->ExecuteRead([](SystemTransaction& t) {
    auto v = t.Get("postrecovery");
    if (!v.ok()) return Status::Internal("read-your-writes broken");
    std::printf("  read-your-writes on recovered secondary: %s\n",
                v->c_str());
    return Status::OK();
  });
  std::printf("  session read: %s\n", s.ToString().c_str());

  // The unaffected secondary's whole state chain still matches the primary
  // (Theorem 3.1 held throughout the failure).
  auto report = history::CheckCompleteness(
      sys.primary_db()->StateChainHistory(),
      sys.secondary_db(1)->StateChainHistory());
  std::printf("phase 4: completeness on surviving secondary: %s\n",
              report.ok ? "holds" : report.violation.c_str());

  sys.Stop();
  return 0;
}
