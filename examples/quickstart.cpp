// Quickstart: bring up a lazily replicated system with strong session SI,
// write through the primary, read your own writes from a secondary.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "system/replicated_system.h"

using lazysi::session::Guarantee;
using lazysi::system::ReplicatedSystem;
using lazysi::system::SystemConfig;
using lazysi::system::SystemTransaction;

int main() {
  // One primary plus two secondaries, strong session SI (the paper's
  // ALG-STRONG-SESSION-SI): no transaction inversions within a session.
  SystemConfig config;
  config.num_secondaries = 2;
  config.guarantee = Guarantee::kStrongSessionSI;
  ReplicatedSystem sys(config);
  sys.Start();

  // Each Connect() is one client session, bound to a secondary.
  auto client = sys.Connect();
  std::printf("connected to secondary %zu, session label %llu\n",
              client->secondary_index(),
              static_cast<unsigned long long>(client->session()->label()));

  // Update transactions are transparently forwarded to the primary.
  lazysi::Status s = client->ExecuteUpdate([](SystemTransaction& t) {
    LAZYSI_RETURN_NOT_OK(t.Put("user/42/name", "Ada"));
    return t.Put("user/42/email", "ada@example.com");
  });
  std::printf("update commit: %s\n", s.ToString().c_str());

  // Read-only transactions run at the secondary. Under strong session SI
  // this blocks (briefly) until the secondary has applied our update, so the
  // read below can never miss it.
  s = client->ExecuteRead([](SystemTransaction& t) {
    auto name = t.Get("user/42/name");
    auto email = t.Get("user/42/email");
    if (!name.ok() || !email.ok()) {
      return lazysi::Status::Internal("read-your-writes failed!");
    }
    std::printf("read from secondary: name=%s email=%s\n", name->c_str(),
                email->c_str());
    return lazysi::Status::OK();
  });
  std::printf("read-only txn: %s\n", s.ToString().c_str());

  // Snapshot scans see a transaction-consistent prefix of primary states.
  s = client->ExecuteRead([](SystemTransaction& t) {
    auto rows = t.Scan("user/", "user0");
    if (!rows.ok()) return rows.status();
    std::printf("scan found %zu rows under user/\n", rows->size());
    return lazysi::Status::OK();
  });
  std::printf("scan txn: %s\n", s.ToString().c_str());

  // First-committer-wins in action: two racing increments, one retries.
  (void)client->ExecuteUpdate(
      [](SystemTransaction& t) { return t.Put("counter", "0"); });
  auto other = sys.Connect();
  for (int i = 0; i < 10; ++i) {
    auto increment = [](SystemTransaction& t) -> lazysi::Status {
      auto v = t.Get("counter");
      if (!v.ok()) return v.status();
      return t.Put("counter", std::to_string(std::stoi(*v) + 1));
    };
    // First-committer-wins can abort a racer; ExecuteUpdate retries with a
    // fresh snapshot, so no increment is ever lost.
    (void)client->ExecuteUpdate(increment, /*max_attempts=*/100);
    (void)other->ExecuteUpdate(increment, /*max_attempts=*/100);
  }
  // Note: `client`'s session only guarantees visibility of its OWN updates;
  // `other`'s most recent increment may lag (strong *session* SI does not
  // order across sessions). Syncing the replicas first makes the final total
  // exact.
  sys.WaitForReplication();
  (void)client->ExecuteRead([](SystemTransaction& t) {
    std::printf("counter after 20 racing increments: %s\n",
                t.Get("counter").ValueOr("?").c_str());
    return lazysi::Status::OK();
  });

  sys.Stop();
  std::printf("done\n");
  return 0;
}
