// The paper's motivating scenario (Section 1): an online bookstore customer
// runs Tbuy (purchase) followed by Tcheck (order status) in one session.
// With lazy replication and ALG-WEAK-SI, Tcheck may run against a secondary
// that has not applied Tbuy yet — a *transaction inversion*. With
// ALG-STRONG-SESSION-SI the inversion is impossible, at a small latency
// cost. This demo runs both and counts.
//
//   $ ./build/examples/bookstore

#include <chrono>
#include <cstdio>

#include "history/si_checker.h"
#include "system/replicated_system.h"

using namespace lazysi;
using system::ReplicatedSystem;
using system::SystemConfig;
using system::SystemTransaction;

namespace {

struct RunResult {
  int orders = 0;
  int inversions = 0;
  double mean_check_ms = 0;
  std::size_t recorded_session_inversions = 0;
};

RunResult RunStore(session::Guarantee guarantee, int orders) {
  SystemConfig config;
  config.num_secondaries = 2;
  config.guarantee = guarantee;
  config.record_history = true;
  // Batch propagation every 50 ms — a scaled-down version of the paper's
  // 10 s propagation delay, enough to make weak-SI inversions near-certain.
  config.propagation_batch_interval = std::chrono::milliseconds(50);
  ReplicatedSystem sys(config);
  sys.Start();

  auto customer = sys.Connect();
  RunResult result;
  result.orders = orders;
  double total_check_ms = 0;

  for (int i = 0; i < orders; ++i) {
    const std::string order_key = "order/" + std::to_string(i);
    // Tbuy: purchase some number of books.
    Status s = customer->ExecuteUpdate([&](SystemTransaction& t) {
      LAZYSI_RETURN_NOT_OK(t.Put(order_key, "purchased: 2 books"));
      return t.Put("inventory/last_order", order_key);
    });
    if (!s.ok()) std::printf("Tbuy failed: %s\n", s.ToString().c_str());

    // Tcheck: immediately check the status of the purchase.
    const auto t0 = std::chrono::steady_clock::now();
    auto check = customer->BeginRead();
    if (!check.ok()) {
      std::printf("Tcheck failed: %s\n", check.status().ToString().c_str());
      continue;
    }
    auto status = (*check)->Get(order_key);
    (void)(*check)->Commit();
    total_check_ms += std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    if (!status.ok()) ++result.inversions;  // the purchase is "missing"
  }
  result.mean_check_ms = total_check_ms / orders;

  sys.WaitForReplication();
  sys.Stop();
  history::SIChecker checker(sys.recorder()->Snapshot());
  result.recorded_session_inversions = checker.CountSessionInversions();
  return result;
}

}  // namespace

int main() {
  constexpr int kOrders = 20;
  std::printf("bookstore demo: %d buy-then-check rounds per algorithm\n\n",
              kOrders);
  std::printf("%-24s %10s %14s %18s\n", "algorithm", "inversions",
              "Tcheck mean", "history checker");
  for (auto g : {session::Guarantee::kWeakSI,
                 session::Guarantee::kStrongSessionSI,
                 session::Guarantee::kStrongSI}) {
    RunResult r = RunStore(g, kOrders);
    std::printf("%-24s %6d/%-3d %11.1f ms %12zu recorded\n",
                std::string(session::GuaranteeName(g)).c_str(), r.inversions,
                r.orders, r.mean_check_ms, r.recorded_session_inversions);
  }
  std::printf(
      "\nALG-WEAK-SI answers instantly but loses the customer's own order;\n"
      "ALG-STRONG-SESSION-SI waits just long enough to never do that.\n");
  return 0;
}
